"""Property-based tests (hypothesis) for the batched data plane.

The properties are the container/stage contracts themselves:

- packing then unpacking a ragged row set is the identity, bitwise, for
  any row lengths and any extra padding width;
- batched stages are row-wise maps, so permuting the batch permutes the
  outputs and changes nothing else;
- the vectorised hysteresis span walk equals the serial per-sample loop
  on arbitrary envelopes;
- the float32 hot path stays within its documented tolerance of the
  float64 numerics on well-conditioned signals (degenerate rows may flip
  threshold branches — that is documented hot-path semantics, so the
  property constrains itself to healthy inputs).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.features import extract_features_batch
from repro.attack.regions import _hysteresis_spans
from repro.batch import UtteranceBatch
from repro.dsp.envelope import moving_rms

# -- strategies -------------------------------------------------------------

_lengths = st.lists(st.integers(min_value=0, max_value=300), min_size=0, max_size=8)
_seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _rows_from(lengths, seed):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=n) for n in lengths]


def _reference_hysteresis(envelope, on, off):
    """The original serial per-sample open/close loop."""
    spans = []
    start = None
    for i, v in enumerate(envelope):
        if start is None:
            if v >= on:
                start = i
        elif v < off:
            spans.append((start, i))
            start = None
    if start is not None:
        spans.append((start, len(envelope)))
    return spans


class TestPackRoundTrip:
    @given(_lengths, _seeds, st.integers(min_value=0, max_value=512))
    @settings(max_examples=60, deadline=None)
    def test_identity_at_any_padding(self, lengths, seed, extra_cols):
        rows = _rows_from(lengths, seed)
        batch = UtteranceBatch.pack(rows, min_cols=extra_cols)
        batch.check_padding()
        out = batch.unpack()
        assert len(out) == len(rows)
        for a, b in zip(rows, out):
            assert a.tobytes() == b.tobytes()

    @given(_lengths, _seeds)
    @settings(max_examples=40, deadline=None)
    def test_padded_to_is_pad_invariant(self, lengths, seed):
        rows = _rows_from(lengths, seed)
        batch = UtteranceBatch.pack(rows)
        wide = batch.padded_to(batch.max_len + 64)
        for a, b in zip(batch.unpack(), wide.unpack()):
            assert a.tobytes() == b.tobytes()


class TestPermutationInvariance:
    @given(
        st.lists(st.integers(min_value=16, max_value=200), min_size=2, max_size=6),
        _seeds,
        _seeds,
    )
    @settings(max_examples=25, deadline=None)
    def test_features_batch_is_row_wise(self, lengths, seed, perm_seed):
        rows = _rows_from(lengths, seed)
        order = np.random.default_rng(perm_seed).permutation(len(rows))
        straight = extract_features_batch(rows, 500.0)
        shuffled = extract_features_batch([rows[i] for i in order], 500.0)
        assert straight[order].tobytes() == shuffled.tobytes()


class TestHysteresisWalk:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
            min_size=0,
            max_size=120,
        ),
        st.floats(min_value=0.1, max_value=3.5),
        st.floats(min_value=0.0, max_value=3.4),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_serial_loop(self, values, on, off):
        off = min(off, on)  # hysteresis: close threshold below open
        envelope = np.asarray(values)
        assert _hysteresis_spans(envelope, on, off) == _reference_hysteresis(
            envelope, on, off
        )


class TestBatchedMovingRms:
    @given(
        st.lists(st.integers(min_value=2, max_value=400), min_size=1, max_size=5),
        _seeds,
        st.floats(min_value=0.002, max_value=0.3),
    )
    @settings(max_examples=40, deadline=None)
    def test_detection_envelope_parity(self, lengths, seed, window_s):
        # detect_batch's cumulative-sum envelope must equal the scalar
        # moving_rms row by row; exercised through the public detector.
        from repro.attack.regions import RegionDetector

        rows = _rows_from(lengths, seed)
        detector = RegionDetector(envelope_window_s=window_s, highpass_hz=None)
        envelopes = detector._detection_signals(rows, 500.0)
        for row, env in zip(rows, envelopes):
            ref = detector.detection_signal(row, 500.0)
            assert ref.tobytes() == env.tobytes()
            window = max(3, int(round(window_s * 500.0)))
            assert moving_rms(row - np.median(row), window).tobytes() == env.tobytes()


class TestFloat32Tolerance:
    @given(
        st.lists(st.integers(min_value=64, max_value=400), min_size=1, max_size=5),
        _seeds,
    )
    @settings(max_examples=25, deadline=None)
    def test_features_close_on_healthy_signals(self, lengths, seed):
        rows = _rows_from(lengths, seed)  # unit-variance noise: well conditioned
        golden = extract_features_batch(rows, 500.0)
        hot = extract_features_batch(rows, 500.0, dtype=np.float32)
        assert hot.dtype == np.float32
        np.testing.assert_allclose(
            hot, golden.astype(np.float32), rtol=2e-3, atol=2e-3
        )
