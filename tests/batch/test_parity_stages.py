"""Per-stage byte parity: batched stages vs their scalar references.

Every batched stage must produce *byte-identical* float64 output
regardless of batch composition, batch size or padding width — that is
the contract that lets the batched pipeline share golden fixtures with
the per-utterance reference path. Each test compares ``.tobytes()``, not
``allclose``.
"""

import numpy as np
import pytest

from repro.attack.features import extract_features, extract_features_batch
from repro.attack.regions import RegionDetector
from repro.attack.specimages import (
    region_spectrogram_image,
    region_spectrogram_images_batch,
)
from repro.datasets import build_tess
from repro.dsp.spectrogram import spectrogram_image, spectrogram_image_batch
from repro.dsp.stft import frame_signal, stft
from repro.phone import VibrationChannel
from repro.speech.formants import formant_filter, formant_filter_batch
from repro.speech.glottal import glottal_source, glottal_source_banked


def _item_rng(seed, index):
    return np.random.default_rng([0x454D4F, seed & 0xFFFFFFFF, index])


@pytest.fixture(scope="module")
def corpus():
    return build_tess(words_per_emotion=2, seed=123)


@pytest.fixture(scope="module")
def channel():
    return VibrationChannel("oneplus7t", mode="loudspeaker", placement="table_top")


class TestGlottalBanked:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_output_and_rng_stream_match(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(100, 4000))
        f0 = np.where(
            rng.random(n) > 0.2, rng.uniform(80, 320, n), 0.0
        )
        ref_rng = np.random.default_rng([seed, 1])
        fast_rng = np.random.default_rng([seed, 1])
        ref = glottal_source(f0, 8000.0, ref_rng)
        fast = glottal_source_banked(f0, 8000.0, fast_rng)
        assert ref.tobytes() == fast.tobytes()
        # The banked path must consume the RNG stream identically, so
        # anything drawn *after* the call is also identical.
        assert (
            ref_rng.standard_normal(16).tobytes()
            == fast_rng.standard_normal(16).tobytes()
        )

    def test_unvoiced_contour(self):
        ref = glottal_source(np.zeros(512), 8000.0, np.random.default_rng(3))
        fast = glottal_source_banked(np.zeros(512), 8000.0, np.random.default_rng(3))
        assert ref.tobytes() == fast.tobytes()


class TestFormantFilterBatch:
    def test_parity_with_mixed_formant_targets(self, rng):
        formant_sets = [
            (730.0, 1090.0, 2440.0),
            (270.0, 2290.0, 3010.0),
            (730.0, 1090.0, 2440.0),  # duplicate target: grouped rows
        ]
        sources = [rng.normal(size=rng.integers(64, 2000)) for _ in formant_sets]
        batched = formant_filter_batch(sources, formant_sets, 8000.0)
        for src, formants, got in zip(sources, formant_sets, batched):
            ref = formant_filter(src, formants, 8000.0)
            assert ref.tobytes() == got.tobytes()

    def test_parity_independent_of_batchmates(self, rng):
        src = rng.normal(size=777)
        formants = (500.0, 1500.0, 2500.0)
        alone = formant_filter_batch([src], [formants], 8000.0)[0]
        other = rng.normal(size=3000)
        crowded = formant_filter_batch(
            [other, src], [formants, formants], 8000.0
        )[1]
        assert alone.tobytes() == crowded.tobytes()


class TestRenderBatch:
    def test_corpus_render_batch_parity(self, corpus):
        specs = corpus.specs[:10]
        ref = [corpus.render(s) for s in specs]
        got = corpus.render_batch(specs)
        assert len(got) == len(ref)
        for a, b in zip(ref, got):
            assert a.tobytes() == b.tobytes()

    def test_batch_composition_independence(self, corpus):
        specs = corpus.specs[:6]
        whole = corpus.render_batch(specs)
        pieces = corpus.render_batch(specs[:2]) + corpus.render_batch(specs[2:])
        for a, b in zip(whole, pieces):
            assert a.tobytes() == b.tobytes()


class TestTransmitBatch:
    def test_parity(self, corpus, channel):
        specs = corpus.specs[:6]
        audios = [corpus.render(s) for s in specs]
        rngs = [_item_rng(0, i) for i in range(len(specs))]
        got = channel.transmit_batch(audios, corpus.audio_fs, rngs)
        ref_rngs = [_item_rng(0, i) for i in range(len(specs))]
        for audio, r, g in zip(audios, ref_rngs, got):
            ref = channel.transmit(audio, corpus.audio_fs, r)
            assert ref.tobytes() == g.tobytes()

    def test_handheld_rejected(self, corpus):
        handheld = VibrationChannel(
            "oneplus7t", mode="ear_speaker", placement="handheld"
        )
        with pytest.raises(ValueError, match="handheld"):
            handheld.transmit_batch(
                [np.zeros(100)], corpus.audio_fs, [_item_rng(0, 0)]
            )


class TestFrameSignalBatched:
    def test_2d_framing_matches_per_row(self, rng):
        x = rng.normal(size=(4, 1000))
        batched = frame_signal(x, 64, 16, pad=True)
        for i in range(4):
            ref = frame_signal(x[i], 64, 16, pad=True)
            assert ref.tobytes() == batched[i].tobytes()

    def test_2d_stft_matches_per_row(self, rng):
        x = rng.normal(size=(3, 800))
        _, _, Z = stft(x, 500.0, 64, 16)
        for i in range(3):
            _, _, ref = stft(x[i], 500.0, 64, 16)
            assert ref.tobytes() == Z[i].tobytes()


class TestSpectrogramImageBatch:
    def test_ragged_parity(self, rng):
        rows = [rng.normal(size=n) for n in (9, 40, 64, 500, 1931)]
        got = spectrogram_image_batch(rows, 500.0)
        for row, g in zip(rows, got):
            ref = spectrogram_image(row, 500.0)
            assert ref.tobytes() == g.tobytes()

    def test_flat_row_parity(self):
        rows = [np.zeros(100), np.ones(64)]
        got = spectrogram_image_batch(rows, 500.0)
        for row, g in zip(rows, got):
            assert spectrogram_image(row, 500.0).tobytes() == g.tobytes()


class TestDetectBatch:
    @pytest.mark.parametrize("placement", ["table_top", "handheld"])
    def test_parity(self, corpus, channel, placement):
        detector = RegionDetector.for_setting(placement)
        specs = corpus.specs[:6]
        traces = []
        for i, spec in enumerate(specs):
            audio = corpus.render(spec)
            pad = np.zeros(int(0.3 * corpus.audio_fs))
            audio = np.concatenate([pad, audio, pad])
            traces.append(
                channel.transmit(audio, corpus.audio_fs, _item_rng(0, i))
            )
        fs = channel.accel_fs
        batched = detector.detect_batch(traces, fs)
        for trace, regions in zip(traces, batched):
            assert detector.detect(trace, fs) == regions

    def test_degenerate_rows(self):
        detector = RegionDetector.for_setting("table_top")
        traces = [
            np.zeros(0),
            np.zeros(1),
            np.full(300, 9.80665),
            np.random.default_rng(0).normal(size=2000),
        ]
        batched = detector.detect_batch(traces, 500.0)
        for trace, regions in zip(traces, batched):
            assert detector.detect(trace, 500.0) == regions


class TestFeaturesBatch:
    def test_bucketed_parity(self, rng):
        rows = [rng.normal(size=n) for n in (4, 5, 64, 64, 64, 500, 500, 2000)]
        matrix = extract_features_batch(rows, 500.0)
        for row, got in zip(rows, matrix):
            ref = extract_features(row, 500.0)
            assert ref.tobytes() == got.tobytes()

    def test_degenerate_rows_parity(self, rng):
        rows = [
            np.zeros(50),
            np.full(50, 9.80665),
            rng.normal(size=50),
        ]
        matrix = extract_features_batch(rows, 500.0)
        for row, got in zip(rows, matrix):
            assert extract_features(row, 500.0).tobytes() == got.tobytes()

    def test_too_short_row_named(self):
        with pytest.raises(ValueError, match="region 1"):
            extract_features_batch([np.ones(10), np.ones(2)], 500.0)


class TestRegionImagesBatch:
    def test_parity(self, corpus, channel):
        detector = RegionDetector.for_setting("table_top")
        specs = corpus.specs[:5]
        traces, regions = [], []
        for i, spec in enumerate(specs):
            audio = corpus.render(spec)
            pad = np.zeros(int(0.3 * corpus.audio_fs))
            trace = channel.transmit(
                np.concatenate([pad, audio, pad]), corpus.audio_fs, _item_rng(0, i)
            )
            found = detector.detect(trace, channel.accel_fs)
            if found:
                traces.append(trace)
                regions.append(found[0])
        assert traces, "fixture produced no detectable regions"
        got = region_spectrogram_images_batch(traces, regions)
        for trace, region, g in zip(traces, regions, got):
            ref = region_spectrogram_image(trace, region)
            assert ref.tobytes() == g.tobytes()
