"""Shared fixtures for the EmoLeak test suite.

Expensive artefacts (small corpora, collected datasets) are session-scoped
so the cost is paid once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack.pipeline import EmoLeakAttack
from repro.datasets import build_tess
from repro.phone import VibrationChannel


@pytest.fixture(scope="session")
def tiny_tess():
    """A small TESS-style corpus (7 emotions x 2 speakers x 4 words)."""
    return build_tess(words_per_emotion=4, seed=123)


@pytest.fixture(scope="session")
def small_tess():
    """A mid-size TESS-style corpus for accuracy-sensitive tests."""
    return build_tess(words_per_emotion=10, seed=7)


@pytest.fixture(scope="session")
def loud_channel():
    """OnePlus 7T loudspeaker / table-top channel."""
    return VibrationChannel("oneplus7t", mode="loudspeaker", placement="table_top")


@pytest.fixture(scope="session")
def ear_channel():
    """OnePlus 7T ear-speaker / handheld channel."""
    return VibrationChannel("oneplus7t", mode="ear_speaker", placement="handheld")


@pytest.fixture(scope="session")
def tess_features(small_tess, loud_channel):
    """Feature dataset collected through the loudspeaker channel."""
    return EmoLeakAttack(loud_channel, seed=5).collect_features(small_tess)


@pytest.fixture(scope="session")
def tess_spectrograms(small_tess, loud_channel):
    """Spectrogram dataset collected through the loudspeaker channel."""
    return EmoLeakAttack(loud_channel, seed=5).collect_spectrograms(small_tess)


@pytest.fixture()
def rng():
    return np.random.default_rng(42)
