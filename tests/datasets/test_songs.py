"""Tests for the song-clip corpus feeding the content-ID attack."""

import pytest

from repro.datasets import build_songs
from repro.datasets.base import UtteranceSpec
from repro.speech.music import SONGS, song_names


@pytest.fixture(scope="module")
def corpus():
    return build_songs(clips_per_song=4)


class TestBuild:
    def test_full_catalogue_by_default(self, corpus):
        assert set(corpus.speakers) == set(song_names())
        assert len(corpus.specs) == 4 * len(SONGS)

    def test_song_subset(self):
        sub = build_songs(clips_per_song=2, songs=["pop-100", "dnb-150"])
        assert set(corpus_songs(sub)) == {"pop-100", "dnb-150"}
        assert len(sub.specs) == 4

    def test_unknown_song_rejected(self):
        with pytest.raises(ValueError, match="unknown songs"):
            build_songs(songs=["pop-100", "freebird"])

    def test_bad_clip_count_rejected(self):
        with pytest.raises(ValueError):
            build_songs(clips_per_song=0)

    def test_build_is_deterministic(self):
        a = build_songs(clips_per_song=3)
        b = build_songs(clips_per_song=3)
        assert [s.seed for s in a.specs] == [s.seed for s in b.specs]


class TestRender:
    def test_render_deterministic(self, corpus):
        spec = corpus.specs[0]
        assert corpus.render(spec).tobytes() == corpus.render(spec).tobytes()

    def test_render_batch_matches_per_spec(self, corpus):
        specs = corpus.specs[:5]
        batch = corpus.render_batch(specs)
        for wave, spec in zip(batch, specs):
            assert wave.tobytes() == corpus.render(spec).tobytes()

    def test_unknown_song_spec_rejected(self, corpus):
        spec = UtteranceSpec(
            utterance_id="bogus", speaker_id="freebird",
            emotion="neutral", seed=0,
        )
        with pytest.raises(KeyError):
            corpus.render(spec)

    def test_clip_duration(self, corpus):
        wave = corpus.render(corpus.specs[0])
        assert wave.shape == (int(round(corpus.clip_s * corpus.audio_fs)),)


class TestTaskPlane:
    def test_content_label_is_song_name(self, corpus):
        for spec in corpus.specs[: len(SONGS)]:
            assert corpus.task_label(spec, "content-id") == spec.speaker_id

    def test_content_inventory_is_catalogue(self, corpus):
        assert corpus.task_inventory("content-id") == song_names()

    def test_no_gender_labels(self, corpus):
        with pytest.raises(ValueError, match="no gender"):
            corpus.speaker_gender("pop-100")

    def test_subsample_is_per_song(self, corpus):
        sub = corpus.subsample(per_class=2, seed=0)
        counts = {}
        for spec in sub.specs:
            counts[spec.speaker_id] = counts.get(spec.speaker_id, 0) + 1
        assert set(counts) == set(song_names())
        assert set(counts.values()) == {2}

    def test_subsample_deterministic(self, corpus):
        a = corpus.subsample(per_class=2, seed=9)
        b = corpus.subsample(per_class=2, seed=9)
        assert [s.utterance_id for s in a.specs] == [
            s.utterance_id for s in b.specs
        ]


def corpus_songs(corpus):
    return {spec.speaker_id for spec in corpus.specs}
