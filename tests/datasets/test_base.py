"""Tests for repro.datasets.base."""

import numpy as np
import pytest

from repro.datasets.base import UtteranceSpec
from repro.datasets import build_tess


@pytest.fixture(scope="module")
def corpus():
    return build_tess(words_per_emotion=4, seed=11)


class TestCorpusBasics:
    def test_len_and_iter(self, corpus):
        assert len(corpus) == 2 * 7 * 4
        assert len(list(corpus)) == len(corpus)

    def test_class_counts_balanced(self, corpus):
        counts = corpus.class_counts()
        assert set(counts.values()) == {8}

    def test_render_deterministic(self, corpus):
        spec = corpus.specs[0]
        assert np.array_equal(corpus.render(spec), corpus.render(spec))

    def test_render_distinct_specs_differ(self, corpus):
        a = corpus.render(corpus.specs[0])
        b = corpus.render(corpus.specs[1])
        assert a.shape != b.shape or not np.allclose(a, b)

    def test_render_unknown_speaker(self, corpus):
        bad = UtteranceSpec("x", "NOBODY", "angry", seed=1)
        with pytest.raises(KeyError):
            corpus.render(bad)

    def test_render_unknown_emotion(self, corpus):
        sid = corpus.specs[0].speaker_id
        bad = UtteranceSpec("x", sid, "melancholy", seed=1)
        with pytest.raises(ValueError):
            corpus.render(bad)

    def test_iter_rendered(self, corpus):
        pairs = list(corpus.iter_rendered())
        assert len(pairs) == len(corpus)
        spec, wave = pairs[0]
        assert isinstance(spec, UtteranceSpec)
        assert wave.ndim == 1 and wave.size > 0


class TestSubsample:
    def test_per_class_counts(self, corpus):
        sub = corpus.subsample(per_class=3, seed=0)
        counts = sub.class_counts()
        assert all(v == 3 for v in counts.values())

    def test_speaker_balance(self, corpus):
        sub = corpus.subsample(per_class=4, seed=0)
        speakers = {s.speaker_id for s in sub.specs}
        assert len(speakers) == 2

    def test_oversized_request_capped(self, corpus):
        sub = corpus.subsample(per_class=10_000, seed=0)
        assert len(sub) == len(corpus)

    def test_invalid(self, corpus):
        with pytest.raises(ValueError):
            corpus.subsample(per_class=0)

    def test_deterministic(self, corpus):
        a = corpus.subsample(per_class=2, seed=3)
        b = corpus.subsample(per_class=2, seed=3)
        assert [s.utterance_id for s in a.specs] == [s.utterance_id for s in b.specs]


class TestFilterEmotions:
    def test_restricts(self, corpus):
        sub = corpus.filter_emotions(["angry", "sad"])
        assert set(sub.emotions) == {"angry", "sad"}
        assert all(s.emotion in ("angry", "sad") for s in sub.specs)

    def test_no_overlap_raises(self, corpus):
        with pytest.raises(ValueError):
            corpus.filter_emotions(["nostalgia"])
