"""Tests for the three corpus builders and the registry."""

import pytest

from repro.datasets import (
    available_corpora,
    build_corpus,
    build_cremad,
    build_savee,
    build_tess,
)
from repro.datasets.registry import register_corpus
from repro.speech.prosody import CREMAD_EMOTIONS, EMOTIONS


class TestSAVEE:
    def test_published_shape(self):
        corpus = build_savee(seed=0)
        assert len(corpus) == 480
        assert len(corpus.speakers) == 4
        assert corpus.emotions == EMOTIONS

    def test_per_speaker_counts(self):
        corpus = build_savee(seed=0)
        per_speaker = {}
        for spec in corpus.specs:
            per_speaker[spec.speaker_id] = per_speaker.get(spec.speaker_id, 0) + 1
        assert set(per_speaker.values()) == {120}

    def test_neutral_doubled(self):
        corpus = build_savee(seed=0)
        counts = corpus.class_counts()
        assert counts["neutral"] == 120  # 30 per speaker
        assert counts["angry"] == 60  # 15 per speaker

    def test_male_voices(self):
        corpus = build_savee(seed=0)
        assert all(v.base_f0_hz < 160 for v in corpus.speakers.values())

    def test_seed_changes_voices(self):
        a = build_savee(seed=0)
        b = build_savee(seed=99)
        assert a.speakers["DC"] != b.speakers["DC"]


class TestTESS:
    def test_published_shape(self):
        corpus = build_tess()
        assert len(corpus) == 2800
        assert len(corpus.speakers) == 2
        assert corpus.emotions == EMOTIONS

    def test_female_voices(self):
        corpus = build_tess(words_per_emotion=2)
        assert all(v.base_f0_hz > 160 for v in corpus.speakers.values())

    def test_carrier_specs(self):
        corpus = build_tess(words_per_emotion=2)
        assert all(spec.carrier for spec in corpus.specs)

    def test_reduced_size(self):
        corpus = build_tess(words_per_emotion=5)
        assert len(corpus) == 2 * 7 * 5

    def test_invalid_words(self):
        with pytest.raises(ValueError):
            build_tess(words_per_emotion=0)

    def test_low_variability_vs_savee(self):
        assert build_tess(words_per_emotion=1).variability < build_savee().variability


class TestCREMAD:
    def test_published_shape(self):
        corpus = build_cremad()
        assert len(corpus) == 7442
        assert len(corpus.speakers) == 91
        assert corpus.emotions == CREMAD_EMOTIONS

    def test_reduced_build_balanced(self):
        corpus = build_cremad(n_clips=600)
        counts = corpus.class_counts()
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_mixed_sexes(self):
        corpus = build_cremad(n_clips=100)
        f0s = [v.base_f0_hz for v in corpus.speakers.values()]
        assert min(f0s) < 150 < max(f0s)

    def test_invalid_clips(self):
        with pytest.raises(ValueError):
            build_cremad(n_clips=3)


class TestRegistry:
    def test_available(self):
        assert set(available_corpora()) >= {"savee", "tess", "cremad"}

    def test_build_by_name(self):
        corpus = build_corpus("tess", words_per_emotion=2)
        assert corpus.name == "tess"

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown corpus"):
            build_corpus("ravdess")

    def test_register_custom(self):
        register_corpus("custom-test", lambda **kw: build_tess(words_per_emotion=1))
        assert "custom-test" in available_corpora()
        assert len(build_corpus("custom-test")) == 14

    def test_register_empty_name(self):
        with pytest.raises(ValueError):
            register_corpus("", build_tess)
