"""Tests for the multi-task label plane and the shared spec validator."""

import numpy as np
import pytest

from repro.datasets import TASKS, build_savee, build_tess, resolve_task
from repro.datasets.base import GENDER_F0_SPLIT_HZ, UtteranceSpec


@pytest.fixture(scope="module")
def tess():
    return build_tess(words_per_emotion=2)


@pytest.fixture(scope="module")
def savee():
    return build_savee()


class TestResolveTask:
    def test_canonical_names_pass_through(self):
        for task in TASKS:
            assert resolve_task(task) == task

    def test_normalises_case_whitespace_underscores(self):
        assert resolve_task(" Speaker_ID ") == "speaker-id"
        assert resolve_task("CONTENT_ID") == "content-id"

    def test_unknown_task_lists_available(self):
        with pytest.raises(ValueError, match="available"):
            resolve_task("age")


class TestSharedValidator:
    """Per-utterance and batched realisation reject bad specs identically."""

    def _bad_speaker(self, corpus):
        good = corpus.specs[0]
        return UtteranceSpec(
            utterance_id="bogus",
            speaker_id="nobody",
            emotion=good.emotion,
            seed=0,
        )

    def _bad_emotion(self, corpus):
        good = corpus.specs[0]
        return UtteranceSpec(
            utterance_id="bogus",
            speaker_id=good.speaker_id,
            emotion="smug",
            seed=0,
        )

    def test_unknown_speaker_messages_identical(self, tess):
        spec = self._bad_speaker(tess)
        with pytest.raises(KeyError) as serial_err:
            tess.render(spec)
        with pytest.raises(KeyError) as batch_err:
            tess.render_batch([spec])
        assert str(serial_err.value) == str(batch_err.value)
        assert "unknown speaker 'nobody'" in str(serial_err.value)

    def test_bad_emotion_messages_identical(self, tess):
        spec = self._bad_emotion(tess)
        with pytest.raises(ValueError) as serial_err:
            tess.render(spec)
        with pytest.raises(ValueError) as batch_err:
            tess.render_batch([spec])
        assert str(serial_err.value) == str(batch_err.value)
        assert "'smug'" in str(serial_err.value)

    def test_batch_rejects_before_rendering_any(self, tess):
        # The bad spec is last; validation must still fail the whole
        # batch up front rather than after rendering the good ones.
        specs = [tess.specs[0], self._bad_speaker(tess)]
        with pytest.raises(KeyError):
            tess.render_batch(specs)


class TestTaskLabels:
    def test_emotion_label_is_spec_emotion(self, tess):
        spec = tess.specs[0]
        assert tess.task_label(spec, "emotion") == spec.emotion

    def test_speaker_label_is_spec_speaker(self, tess):
        spec = tess.specs[0]
        assert tess.task_label(spec, "speaker-id") == spec.speaker_id

    def test_gender_follows_f0_split(self, tess, savee):
        for corpus in (tess, savee):
            for sid, voice in corpus.speakers.items():
                expected = (
                    "female" if voice.base_f0_hz > GENDER_F0_SPLIT_HZ else "male"
                )
                assert corpus.speaker_gender(sid) == expected

    def test_savee_speakers_all_male(self, savee):
        # SAVEE's roster is four male actors; the derived labels agree.
        assert savee.task_inventory("gender") == ("male",)

    def test_unknown_speaker_gender_raises(self, tess):
        with pytest.raises(KeyError, match="unknown speaker"):
            tess.speaker_gender("nobody")

    def test_speech_corpus_has_no_content_labels(self, tess):
        with pytest.raises(ValueError, match="content-id"):
            tess.task_label(tess.specs[0], "content-id")

    def test_task_inventories(self, tess):
        assert tess.task_inventory("emotion") == tuple(tess.emotions)
        assert tess.task_inventory("speaker-id") == tuple(sorted(tess.speakers))
        assert set(tess.task_inventory("gender")) <= {"male", "female"}

    def test_every_spec_labels_within_inventory(self, savee):
        for task in ("emotion", "speaker-id", "gender"):
            inventory = set(savee.task_inventory(task))
            for spec in savee.specs[:40]:
                assert savee.task_label(spec, task) in inventory


class TestSubsampleStratification:
    def test_round_robin_default_is_unchanged(self, savee):
        # The default path must key/fixture-match the pre-task-plane
        # behaviour exactly.
        a = savee.subsample(per_class=3, seed=0)
        b = savee.subsample(per_class=3, seed=0, stratify_speakers=True)
        assert [s.utterance_id for s in a.specs] == [
            s.utterance_id for s in b.specs
        ]

    def test_unstratified_is_deterministic_and_balanced(self, savee):
        a = savee.subsample(per_class=3, seed=7, stratify_speakers=False)
        b = savee.subsample(per_class=3, seed=7, stratify_speakers=False)
        assert [s.utterance_id for s in a.specs] == [
            s.utterance_id for s in b.specs
        ]
        counts = {}
        for spec in a.specs:
            counts[spec.emotion] = counts.get(spec.emotion, 0) + 1
        assert set(counts.values()) == {3}

    def test_unstratified_mixes_genders_on_mixed_roster(self):
        # CREMA-D's roster lists all male speakers first; the random
        # permutation must not inherit that ordering bias.
        from repro.datasets import build_cremad

        corpus = build_cremad()
        sub = corpus.subsample(per_class=12, seed=0, stratify_speakers=False)
        genders = {corpus.speaker_gender(s.speaker_id) for s in sub.specs}
        assert genders == {"male", "female"}


class TestGenderSplitConstant:
    def test_split_is_between_typical_male_and_female_f0(self):
        assert 100.0 < GENDER_F0_SPLIT_HZ < 200.0

    def test_spearphone_alias_points_at_the_same_constant(self):
        from repro.attack.spearphone import _GENDER_F0_SPLIT

        assert _GENDER_F0_SPLIT == GENDER_F0_SPLIT_HZ

    def test_voices_straddle_the_split(self, tess):
        f0s = np.array([v.base_f0_hz for v in tess.speakers.values()])
        assert f0s.min() < GENDER_F0_SPLIT_HZ or f0s.max() > GENDER_F0_SPLIT_HZ
