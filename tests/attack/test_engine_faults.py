"""Fault injection: stage timing must survive mid-pass exceptions.

PR 1's inline ``perf_counter()`` arithmetic lost every stage timing of a
pass that died mid-stage: the per-item stats object went down with the
exception and ``_publish`` never ran. Spans record on their exception
path directly into the metrics registry, so a failing pass still
accounts for the time it burned — these tests patch the detector (and
the corpus renderer) to raise and assert the books still balance.
"""

import numpy as np
import pytest

from repro.attack.engine import collect_datasets, global_stats
from repro.attack.regions import RegionDetector
from repro.obs import metrics, reset_observability, tracer


class ExplodingDetector:
    """Detector that raises after a configurable number of calls."""

    def __init__(self, fail_at: int = 0):
        self.calls = 0
        self.fail_at = fail_at

    def detect(self, signal, fs):
        self.calls += 1
        if self.calls > self.fail_at:
            raise RuntimeError("sensor fell off the table")
        return RegionDetector.for_setting("table_top").detect(signal, fs)


class TestExceptionAccounting:
    def test_stage_time_recorded_when_detector_raises(self, tiny_tess, loud_channel):
        reset_observability()
        with pytest.raises(RuntimeError, match="sensor fell off"):
            collect_datasets(
                tiny_tess,
                loud_channel,
                specs=tiny_tess.specs[:3],
                detector=ExplodingDetector(fail_at=0),
                seed=1,
                pipeline="per_utterance",
            )
        reg = metrics()
        # The render and transmit that *completed* before the failure are
        # accounted, even though the pass never published its stats.
        assert reg.timer_total("render").count == 1
        assert reg.timer_total("render").total_s > 0
        assert reg.timer_total("transmit").count == 1
        # The failing detect stage recorded its own elapsed time, tagged.
        assert reg.timer("detect", status="error").count == 1
        stats = global_stats()
        assert stats.render_s > 0
        assert stats.detect_s >= 0

    def test_spans_carry_error_status(self, tiny_tess, loud_channel):
        reset_observability()
        with pytest.raises(RuntimeError):
            collect_datasets(
                tiny_tess,
                loud_channel,
                specs=tiny_tess.specs[:3],
                detector=ExplodingDetector(fail_at=0),
                seed=1,
                pipeline="per_utterance",
            )
        (detect,) = tracer().find("detect")
        assert detect.status == "error"
        assert "RuntimeError" in detect.error
        (collect,) = tracer().find("collect")
        assert collect.status == "error"  # the failure propagates up the tree
        # The completed stages under the pass stayed "ok".
        (render,) = tracer().find("render")
        assert render.status == "ok"

    def test_partial_pass_accounts_every_completed_item(
        self, tiny_tess, loud_channel
    ):
        """Failing on item 3 keeps items 1-2 fully accounted."""
        reset_observability()
        with pytest.raises(RuntimeError):
            collect_datasets(
                tiny_tess,
                loud_channel,
                specs=tiny_tess.specs[:5],
                detector=ExplodingDetector(fail_at=2),
                seed=1,
                pipeline="per_utterance",
            )
        reg = metrics()
        assert reg.timer_total("render").count == 3
        assert reg.timer_total("detect").count == 3
        assert reg.timer("detect", status="ok").count == 2
        assert reg.timer("detect", status="error").count == 1

    def test_counters_unpublished_on_failure(self, tiny_tess, loud_channel):
        """_publish never runs for a failed pass: counters stay zero while
        timers (spans) are still accounted — the exact asymmetry the
        global view is documented to have."""
        reset_observability()
        with pytest.raises(RuntimeError):
            collect_datasets(
                tiny_tess,
                loud_channel,
                specs=tiny_tess.specs[:3],
                detector=ExplodingDetector(fail_at=0),
                seed=1,
                pipeline="per_utterance",
            )
        stats = global_stats()
        assert stats.transmits == 0  # counter path needs a finished pass
        assert stats.transmit_s > 0  # timer path survived the exception

    def test_healthy_run_unaffected_by_prior_failure(self, tiny_tess, loud_channel):
        reset_observability()
        with pytest.raises(RuntimeError):
            collect_datasets(
                tiny_tess,
                loud_channel,
                specs=tiny_tess.specs[:3],
                detector=ExplodingDetector(fail_at=0),
                seed=1,
                pipeline="per_utterance",
            )
        result = collect_datasets(
            tiny_tess,
            loud_channel,
            specs=tiny_tess.specs[:5],
            seed=1,
            pipeline="per_utterance",
        )
        assert result.features.X.shape[1] == 24
        assert np.all(np.isfinite(result.features.X))
        assert global_stats().transmits == 5
