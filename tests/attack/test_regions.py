"""Tests for repro.attack.regions."""

import numpy as np
import pytest

from repro.attack.regions import Region, RegionDetector, detection_rate


def burst_trace(fs=420.0, bursts=((2.0, 3.0), (5.0, 6.5)), duration=9.0,
                amp=0.1, noise=0.003, seed=0, offset=9.81):
    """Noise floor with sinusoidal bursts in given intervals."""
    rng = np.random.default_rng(seed)
    n = int(duration * fs)
    t = np.arange(n) / fs
    x = offset + noise * rng.normal(size=n)
    for start, end in bursts:
        mask = (t >= start) & (t < end)
        x[mask] += amp * np.sin(2 * np.pi * 60 * t[mask])
    return x


class TestRegion:
    def test_times(self):
        region = Region(start=420, end=840, fs=420.0)
        assert region.start_s == pytest.approx(1.0)
        assert region.end_s == pytest.approx(2.0)
        assert region.duration_s == pytest.approx(1.0)
        assert region.center_s == pytest.approx(1.5)

    def test_slice(self):
        region = Region(2, 5, 10.0)
        assert np.allclose(region.slice(np.arange(10.0)), [2, 3, 4])


class TestRegionDetector:
    def test_detects_bursts(self):
        trace = burst_trace()
        regions = RegionDetector().detect(trace, 420.0)
        assert len(regions) == 2

    def test_burst_boundaries_approximate(self):
        trace = burst_trace()
        regions = RegionDetector().detect(trace, 420.0)
        first = regions[0]
        assert first.start_s == pytest.approx(2.0, abs=0.25)
        assert first.end_s == pytest.approx(3.0, abs=0.25)

    def test_no_bursts_no_regions(self):
        """A speech-free noise floor must yield no regions at all."""
        trace = burst_trace(bursts=())
        assert RegionDetector().detect(trace, 420.0) == []

    def test_min_duration_filters_clicks(self):
        trace = burst_trace(bursts=((2.0, 2.02),))
        detector = RegionDetector(min_duration_s=0.1)
        assert detector.detect(trace, 420.0) == []

    def test_merge_gap(self):
        trace = burst_trace(bursts=((2.0, 2.5), (2.7, 3.0)))
        merged = RegionDetector(merge_gap_s=0.3).detect(trace, 420.0)
        assert len(merged) == 1
        split = RegionDetector(merge_gap_s=0.02).detect(trace, 420.0)
        assert len(split) == 2

    def test_gravity_offset_irrelevant(self):
        a = RegionDetector().detect(burst_trace(offset=0.0), 420.0)
        b = RegionDetector().detect(burst_trace(offset=9.81), 420.0)
        assert len(a) == len(b)

    def test_highpass_removes_slow_masking(self):
        """Sub-8 Hz motion hides bursts unless the detection HPF is on."""
        fs = 420.0
        trace = burst_trace(fs=fs, amp=0.02)
        t = np.arange(trace.size) / fs
        motion = 0.15 * np.sin(2 * np.pi * 1.5 * t) + 0.08 * np.sin(2 * np.pi * 5 * t)
        noisy = trace + motion
        with_filter = RegionDetector(highpass_hz=8.0).detect(noisy, fs)
        truth = [(2.0, 3.0), (5.0, 6.5)]
        assert detection_rate(with_filter, truth) == 1.0

    def test_for_setting_handheld_has_filter(self):
        assert RegionDetector.for_setting("handheld").highpass_hz == 8.0

    def test_for_setting_tabletop_no_filter(self):
        assert RegionDetector.for_setting("table_top").highpass_hz is None

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RegionDetector(highpass_hz=0.0)
        with pytest.raises(ValueError):
            RegionDetector(threshold_factor=0.0)
        with pytest.raises(ValueError):
            RegionDetector(release_factor=1.5)

    def test_invalid_fs(self):
        with pytest.raises(ValueError):
            RegionDetector().detect(np.zeros(100), 0.0)

    def test_empty_trace(self):
        with pytest.raises(ValueError):
            RegionDetector().detect(np.zeros((2, 2)), 420.0)


class TestDetectionRate:
    def test_full(self):
        regions = [Region(840, 1260, 420.0)]
        assert detection_rate(regions, [(2.0, 3.0)]) == 1.0

    def test_partial(self):
        regions = [Region(840, 1260, 420.0)]
        assert detection_rate(regions, [(2.0, 3.0), (5.0, 6.0)]) == 0.5

    def test_no_regions(self):
        assert detection_rate([], [(0.0, 1.0)]) == 0.0

    def test_no_truth(self):
        with pytest.raises(ValueError):
            detection_rate([], [])

    def test_edge_touch_does_not_count(self):
        """Zero-length intersection is not an overlap.

        The region spans [2.0 s, 3.0 s]; intervals ending exactly at its
        start or starting exactly at its end merely touch it.
        """
        regions = [Region(840, 1260, 420.0)]  # 2.0 s .. 3.0 s
        assert detection_rate(regions, [(1.0, 2.0)]) == 0.0
        assert detection_rate(regions, [(3.0, 4.0)]) == 0.0

    def test_sliver_overlap_counts(self):
        regions = [Region(840, 1260, 420.0)]  # 2.0 s .. 3.0 s
        assert detection_rate(regions, [(2.99, 4.0)]) == 1.0
        assert detection_rate(regions, [(1.0, 2.01)]) == 1.0

    def test_centre_outside_interval_still_counts(self):
        """Overlap is the criterion, not the region centre's position."""
        region = Region(840, 1260, 420.0)  # centre at 2.5 s
        assert region.center_s < 2.8
        assert detection_rate([region], [(2.8, 5.0)]) == 1.0
