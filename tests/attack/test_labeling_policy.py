"""Tests for the deterministic region↔event matching policy.

With ``tolerance_s > 0`` the expanded playback intervals of adjacent
events can overlap, so a region centre may fall inside several
intervals. The policy: nearest interval centre wins; an exact distance
tie between events carrying the same label resolves to the earlier
event; an exact tie with conflicting labels drops the region and counts
it under the ``labeling.rows_ambiguous`` metric.
"""

import pytest

from repro.attack.labeling import (
    label_regions,
    label_regions_for_task,
    match_regions,
)
from repro.attack.regions import Region
from repro.datasets import build_tess
from repro.obs import metrics
from repro.phone.recording import PlaybackEvent


def event(emotion, start, end, speaker="s1", uid=None):
    return PlaybackEvent(uid or f"u-{emotion}-{start}", speaker, emotion, start, end)


def region_at(center_s, fs=1000.0, half_width_s=0.01):
    start = int((center_s - half_width_s) * fs)
    end = int((center_s + half_width_s) * fs)
    return Region(start, end, fs)


def _ambiguous_total() -> float:
    return metrics().counter_total("labeling.rows_ambiguous")


class TestOverlapResolution:
    # Two events whose expanded intervals overlap in [1.05, 1.15] at
    # tolerance 0.15: A = [0, 1], B = [1.2, 2.2].
    EVENTS = [event("happy", 0.0, 1.0), event("sad", 1.2, 2.2)]

    def test_boundary_below_midpoint_takes_earlier(self):
        # Centre 1.06 sits in both expanded intervals; A's interval
        # centre (0.5) is nearer than B's (1.7).
        matched = match_regions([region_at(1.06)], self.EVENTS, tolerance_s=0.15)
        assert len(matched) == 1
        assert matched[0][1].emotion == "happy"

    def test_boundary_above_midpoint_takes_later(self):
        # Centre 1.14: B's interval centre is now nearer. The old
        # first-match rule would have (wrongly) said A.
        matched = match_regions([region_at(1.14)], self.EVENTS, tolerance_s=0.15)
        assert len(matched) == 1
        assert matched[0][1].emotion == "sad"

    def test_outside_overlap_unaffected(self):
        for center, expected in ((0.5, "happy"), (1.7, "sad")):
            matched = match_regions(
                [region_at(center)], self.EVENTS, tolerance_s=0.15
            )
            assert [e.emotion for _, e in matched] == [expected]


class TestExactTies:
    def test_equidistant_same_label_takes_earlier_event(self):
        # Back-to-back events, same label; centre exactly between the
        # interval centres. Deterministic: the earlier event wins.
        a = event("happy", 0.0, 1.0, uid="a")
        b = event("happy", 1.0, 2.0, uid="b")
        before = _ambiguous_total()
        matched = match_regions([region_at(1.0)], [b, a], tolerance_s=0.05)
        assert len(matched) == 1
        assert matched[0][1].utterance_id == "a"
        assert _ambiguous_total() == before

    def test_equidistant_conflicting_labels_dropped_and_counted(self):
        a = event("happy", 0.0, 1.0)
        b = event("sad", 1.0, 2.0)
        before = _ambiguous_total()
        assert match_regions([region_at(1.0)], [a, b], tolerance_s=0.05) == []
        assert _ambiguous_total() == before + 1

    def test_label_regions_drops_ambiguous_too(self):
        a = event("happy", 0.0, 1.0)
        b = event("sad", 1.0, 2.0)
        assert label_regions([region_at(1.0)], [a, b], tolerance_s=0.05) == []

    def test_tie_judged_under_task_label(self):
        # Same *speaker* on both sides of the tie: ambiguous for the
        # emotion task, resolvable for the speaker-ID task.
        corpus = build_tess(words_per_emotion=1)
        speaker = sorted(corpus.speakers)[0]
        a = event("happy", 0.0, 1.0, speaker=speaker, uid="a")
        b = event("sad", 1.0, 2.0, speaker=speaker, uid="b")
        labelled = label_regions_for_task(
            [region_at(1.0)], [a, b], corpus, task="speaker-id", tolerance_s=0.05
        )
        assert [label for _, label in labelled] == [speaker]


class TestTaskLabels:
    def test_label_regions_for_task_gender(self):
        corpus = build_tess(words_per_emotion=1)
        speaker = sorted(corpus.speakers)[0]
        events = [event("happy", 0.0, 1.0, speaker=speaker)]
        labelled = label_regions_for_task(
            [region_at(0.5)], events, corpus, task="gender"
        )
        assert [label for _, label in labelled] == [
            corpus.speaker_gender(speaker)
        ]

    def test_unknown_task_rejected(self):
        corpus = build_tess(words_per_emotion=1)
        with pytest.raises(ValueError, match="unknown task"):
            label_regions_for_task([], [], corpus, task="astrology")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            match_regions([], [], tolerance_s=-0.1)
