"""Tests for repro.attack.labeling and repro.attack.specimages."""

import numpy as np
import pytest

from repro.attack.labeling import label_regions
from repro.attack.regions import Region
from repro.attack.specimages import region_spectrogram_image, regions_to_images
from repro.phone.recording import PlaybackEvent


def event(emotion, start, end):
    return PlaybackEvent(f"u-{emotion}-{start}", "s1", emotion, start, end)


class TestLabelRegions:
    def test_center_in_interval(self):
        regions = [Region(420, 840, 420.0)]  # 1.0-2.0 s
        events = [event("angry", 0.9, 2.1)]
        labelled = label_regions(regions, events)
        assert labelled == [(regions[0], "angry")]

    def test_region_in_gap_dropped(self):
        regions = [Region(4200, 4620, 420.0)]  # 10-11 s
        events = [event("sad", 0.0, 5.0)]
        assert label_regions(regions, events) == []

    def test_tolerance_extends_interval(self):
        regions = [Region(0, 420, 420.0)]  # centre 0.5 s
        events = [event("fear", 0.52, 1.0)]
        assert label_regions(regions, events, tolerance_s=0.0) == []
        assert label_regions(regions, events, tolerance_s=0.1) == [
            (regions[0], "fear")
        ]

    def test_first_matching_event_wins(self):
        regions = [Region(0, 840, 420.0)]
        events = [event("happy", 0.0, 2.0), event("sad", 0.5, 2.5)]
        assert label_regions(regions, events)[0][1] == "happy"

    def test_multiple_regions(self):
        regions = [Region(0, 420, 420.0), Region(840, 1260, 420.0)]
        events = [event("happy", 0.0, 1.0), event("sad", 1.9, 3.2)]
        labelled = label_regions(regions, events)
        assert [label for _, label in labelled] == ["happy", "sad"]

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            label_regions([], [], tolerance_s=-1.0)


class TestSpectrogramImages:
    def _trace(self, fs=420.0, duration=3.0):
        rng = np.random.default_rng(0)
        t = np.arange(int(duration * fs)) / fs
        return 9.81 + 0.1 * np.sin(2 * np.pi * 60 * t) + 0.005 * rng.normal(size=t.size)

    def test_image_shape_and_range(self):
        trace = self._trace()
        region = Region(100, 900, 420.0)
        img = region_spectrogram_image(trace, region, size=32)
        assert img.shape == (32, 32)
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_custom_size(self):
        trace = self._trace()
        img = region_spectrogram_image(trace, Region(0, 840, 420.0), size=16)
        assert img.shape == (16, 16)

    def test_too_short_region(self):
        trace = self._trace()
        with pytest.raises(ValueError):
            region_spectrogram_image(trace, Region(0, 4, 420.0))

    def test_regions_to_images_skips_short(self):
        trace = self._trace()
        regions = [Region(0, 4, 420.0), Region(100, 900, 420.0)]
        images = regions_to_images(trace, regions)
        assert len(images) == 1

    def test_gravity_removed(self):
        """Image should match for traces differing only by DC offset."""
        trace = self._trace()
        region = Region(100, 900, 420.0)
        a = region_spectrogram_image(trace, region)
        b = region_spectrogram_image(trace - 9.81, region)
        assert np.allclose(a, b, atol=1e-9)
