"""Tests for repro.attack.defense (Section VI-B mitigations)."""

import numpy as np
import pytest

from repro.attack.defense import (
    Defense,
    LowPassObfuscationDefense,
    NoiseInjectionDefense,
    RateLimitDefense,
    SensorDampingDefense,
    evaluate_defense,
)
from repro.datasets import build_tess
from repro.phone.channel import VibrationChannel


@pytest.fixture(scope="module")
def corpus():
    return build_tess(words_per_emotion=8, seed=1)


@pytest.fixture()
def channel():
    return VibrationChannel("oneplus7t")


class TestDefenseConstruction:
    def test_rate_limit_caps(self, channel):
        defended = RateLimitDefense(max_rate_hz=200.0).apply(channel)
        assert defended.accel_fs == 200.0

    def test_rate_limit_no_upsample(self, channel):
        defended = RateLimitDefense(max_rate_hz=10_000.0).apply(channel)
        assert defended.accel_fs == channel.accel_fs

    def test_damping_attenuates_gains(self, channel):
        defended = SensorDampingDefense(attenuation_db=20.0).apply(channel)
        assert defended.device.loud_gain == pytest.approx(
            channel.device.loud_gain / 10.0
        )

    def test_original_channel_untouched(self, channel):
        original_gain = channel.device.loud_gain
        SensorDampingDefense(attenuation_db=40.0).apply(channel)
        assert channel.device.loud_gain == original_gain

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RateLimitDefense(max_rate_hz=0.0)
        with pytest.raises(ValueError):
            SensorDampingDefense(attenuation_db=-1.0)
        with pytest.raises(ValueError):
            LowPassObfuscationDefense(cutoff_hz=0.0)
        with pytest.raises(ValueError):
            NoiseInjectionDefense(noise_rms=-0.1)

    def test_names(self):
        assert RateLimitDefense(200.0).name == "rate_limit_200hz"
        assert SensorDampingDefense(26.0).name == "damping_26db"


class TestPostprocess:
    def test_lowpass_removes_speech_band(self):
        fs = 420.0
        t = np.arange(int(2 * fs)) / fs
        trace = 9.81 + 0.1 * np.sin(2 * np.pi * 100 * t)
        defended = LowPassObfuscationDefense(cutoff_hz=20.0).postprocess(trace, fs)
        assert np.std(defended[200:-200]) < 0.1 * np.std(trace - 9.81)
        assert defended.mean() == pytest.approx(9.81, abs=0.05)

    def test_noise_injection_raises_floor(self):
        trace = np.full(2000, 9.81)
        defended = NoiseInjectionDefense(noise_rms=0.1, seed=0).postprocess(
            trace, 420.0
        )
        assert np.std(defended) == pytest.approx(0.1, rel=0.2)

    def test_base_defense_postprocess_identity(self):
        trace = np.arange(10.0)
        assert np.array_equal(Defense().postprocess(trace, 420.0), trace)


class TestEvaluateDefense:
    def test_baseline_beats_chance(self, corpus, channel):
        accuracy, extraction = evaluate_defense(None, corpus, channel)
        assert accuracy > 2 * (1.0 / 7.0)
        assert extraction > 0.8

    def test_heavy_damping_defeats_attack(self, corpus, channel):
        accuracy, extraction = evaluate_defense(
            SensorDampingDefense(attenuation_db=45.0), corpus, channel
        )
        assert extraction < 0.3 or accuracy < 0.35

    def test_lowpass_obfuscation_defeats_attack(self, corpus, channel):
        baseline, _ = evaluate_defense(None, corpus, channel)
        defended, _ = evaluate_defense(
            LowPassObfuscationDefense(cutoff_hz=15.0), corpus, channel
        )
        assert defended < baseline - 0.15

    def test_rate_cap_degrades_gracefully(self, corpus, channel):
        accuracy, extraction = evaluate_defense(
            RateLimitDefense(max_rate_hz=200.0), corpus, channel
        )
        # The deployed mitigation leaves the attack viable (paper VI-A).
        assert accuracy > 2 * (1.0 / 7.0)
        assert extraction > 0.8


class TestQuantizationDefense:
    def test_snaps_to_grid(self):
        from repro.attack.defense import QuantizationDefense

        trace = np.array([0.0012, 0.0049, 0.0051, -0.0074])
        defended = QuantizationDefense(lsb=0.005).postprocess(trace, 420.0)
        assert np.allclose(defended % 0.005, 0.0, atol=1e-12)

    def test_zero_lsb_is_identity(self):
        from repro.attack.defense import QuantizationDefense

        trace = np.linspace(-1, 1, 64)
        assert np.array_equal(
            QuantizationDefense(lsb=0.0).postprocess(trace, 420.0), trace
        )

    def test_invalid_lsb(self):
        from repro.attack.defense import QuantizationDefense

        with pytest.raises(ValueError):
            QuantizationDefense(lsb=-0.1)


class TestComposedDefense:
    def test_name_joins_parts(self):
        from repro.attack.defense import ComposedDefense

        stack = ComposedDefense(
            (RateLimitDefense(50.0), LowPassObfuscationDefense(20.0))
        )
        assert stack.name == "rate_limit_50hz+lowpass_20hz"
        assert ComposedDefense(()).name == "none"

    def test_apply_folds_channel_transforms(self, channel):
        from repro.attack.defense import ComposedDefense

        stack = ComposedDefense(
            (RateLimitDefense(50.0), SensorDampingDefense(20.0))
        )
        defended = stack.apply(channel)
        assert defended.accel_fs == 50.0
        assert defended.device.loud_gain == pytest.approx(
            channel.device.loud_gain / 10.0
        )

    def test_fingerprints_distinguish_params_and_order(self):
        from repro.attack.defense import ComposedDefense

        cap, lpf = RateLimitDefense(50.0), LowPassObfuscationDefense(20.0)
        assert (
            ComposedDefense((cap, lpf)).fingerprint()
            != ComposedDefense((lpf, cap)).fingerprint()
        )
        assert (
            RateLimitDefense(50.0).fingerprint()
            != RateLimitDefense(200.0).fingerprint()
        )


class TestNoiseSeedCacheSeparation:
    """Regression: defended cache entries must key on the noise seed.

    The original NoiseInjectionDefense carried a shared generator whose
    state advanced across calls — two defended collections with
    different seeds (or the same seed, different call order) could
    silently share or scramble CollectionCache entries. The defense is
    now stateless (per-trace RNG derived from the trace content and the
    seed) and the seed is part of the collection key via fingerprint().
    """

    def test_collection_keys_differ_by_seed(self, corpus, channel):
        from repro.attack.engine import collection_key
        from repro.attack.regions import RegionDetector

        specs = corpus.specs
        detector = RegionDetector()

        def key(defense):
            return collection_key(
                corpus, channel, specs, detector, False, 0, defense=defense
            )

        seed0 = key(NoiseInjectionDefense(noise_rms=0.05, seed=0))
        seed1 = key(NoiseInjectionDefense(noise_rms=0.05, seed=1))
        assert seed0 != seed1
        assert seed0 == key(NoiseInjectionDefense(noise_rms=0.05, seed=0))
        assert key(None) != seed0

    def test_postprocess_is_stateless(self):
        trace = np.sin(np.linspace(0, 40, 2000)) + 9.81
        d0 = NoiseInjectionDefense(noise_rms=0.1, seed=0)
        first = d0.postprocess(trace, 420.0)
        # A second call on the same instance must not advance any state.
        assert np.array_equal(d0.postprocess(trace, 420.0), first)
        # A fresh instance with the same seed agrees; another seed differs.
        assert np.array_equal(
            NoiseInjectionDefense(noise_rms=0.1, seed=0).postprocess(trace, 420.0),
            first,
        )
        assert not np.array_equal(
            NoiseInjectionDefense(noise_rms=0.1, seed=1).postprocess(trace, 420.0),
            first,
        )

    def test_defended_collections_do_not_share_cache_entries(self, channel):
        from repro.attack.defense import ComposedDefense
        from repro.attack.engine import CollectionCache, collect_datasets

        corpus = build_tess(words_per_emotion=2, seed=7)
        cache = CollectionCache()

        def collect(seed):
            stack = ComposedDefense(
                (NoiseInjectionDefense(noise_rms=0.1, seed=seed),)
            )
            return collect_datasets(corpus, channel, seed=0, cache=cache,
                                    defense=stack)

        seed0 = collect(0)
        seed1 = collect(1)
        assert seed0.features.X.tobytes() != seed1.features.X.tobytes()
        # Same seed again: a true cache hit returning the first result.
        assert collect(0) is seed0
