"""Tests for repro.attack.features (the Table II feature set)."""

import numpy as np
import pytest

from repro.attack.features import (
    FEATURE_NAMES,
    FREQ_FEATURES,
    TIME_FEATURES,
    extract_features,
    extract_freq_features,
    extract_time_features,
)


@pytest.fixture()
def region():
    rng = np.random.default_rng(0)
    t = np.arange(420) / 420.0
    return 9.81 + 0.1 * np.sin(2 * np.pi * 50 * t) + 0.01 * rng.normal(size=420)


class TestInventory:
    def test_twelve_plus_twelve(self):
        assert len(TIME_FEATURES) == 12
        assert len(FREQ_FEATURES) == 12
        assert len(FEATURE_NAMES) == 24

    def test_paper_feature_names_present(self):
        expected_time = {"min", "max", "mean", "std", "variance", "range", "cv",
                         "skewness", "kurtosis", "quantile25", "quantile50",
                         "mean_crossing_rate"}
        assert set(TIME_FEATURES) == expected_time
        assert "spec_centroid" in FREQ_FEATURES
        assert "irregularity_k" in FREQ_FEATURES
        assert "irregularity_j" in FREQ_FEATURES


class TestTimeFeatures:
    def test_basic_statistics(self, region):
        feats = extract_time_features(region)
        assert feats["min"] == pytest.approx(region.min())
        assert feats["max"] == pytest.approx(region.max())
        assert feats["mean"] == pytest.approx(region.mean())
        assert feats["variance"] == pytest.approx(region.var())
        assert feats["range"] == pytest.approx(region.max() - region.min())
        assert feats["quantile50"] == pytest.approx(np.median(region))

    def test_cv_definition(self, region):
        feats = extract_time_features(region)
        assert feats["cv"] == pytest.approx(region.std() / abs(region.mean()))

    def test_cv_finite_at_zero_mean(self):
        """Zero-mean regions get cv == 0.0, not a NaN sentinel.

        A NaN here used to flow into the feature matrix and get the whole
        row dropped by ``clean_features``; the finite fallback keeps the
        sample.
        """
        x = np.array([-1.0, 1.0, -1.0, 1.0])
        cv = extract_time_features(x)["cv"]
        assert np.isfinite(cv)
        assert cv == 0.0

    def test_constant_region(self):
        feats = extract_time_features(np.full(100, 9.81))
        assert feats["std"] == pytest.approx(0.0, abs=1e-12)
        assert feats["skewness"] == 0.0
        assert feats["kurtosis"] == 0.0
        assert feats["mean_crossing_rate"] == 0.0

    def test_mean_crossing_rate_of_alternating(self):
        x = np.array([1.0, -1.0] * 50)
        assert extract_time_features(x)["mean_crossing_rate"] == pytest.approx(1.0)

    def test_skewness_sign(self):
        right_skewed = np.concatenate([np.zeros(95), np.full(5, 10.0)])
        assert extract_time_features(right_skewed)["skewness"] > 1.0

    def test_too_short(self):
        with pytest.raises(ValueError):
            extract_time_features(np.array([1.0]))


class TestFreqFeatures:
    def test_dc_excluded(self):
        """Gravity offset must not affect spectral statistics."""
        t = np.arange(420) / 420.0
        tone = 0.1 * np.sin(2 * np.pi * 50 * t)
        a = extract_freq_features(tone, 420.0)
        b = extract_freq_features(tone + 9.81, 420.0)
        assert a["spec_centroid"] == pytest.approx(b["spec_centroid"], rel=1e-6)

    def test_centroid_tracks_tone(self):
        t = np.arange(840) / 420.0
        low = extract_freq_features(np.sin(2 * np.pi * 30 * t), 420.0)
        high = extract_freq_features(np.sin(2 * np.pi * 150 * t), 420.0)
        assert low["spec_centroid"] == pytest.approx(30.0, abs=5.0)
        assert high["spec_centroid"] == pytest.approx(150.0, abs=5.0)

    def test_entropy_bounds(self):
        rng = np.random.default_rng(1)
        noise = extract_freq_features(rng.normal(size=420), 420.0)
        t = np.arange(420) / 420.0
        tone = extract_freq_features(np.sin(2 * np.pi * 50 * t), 420.0)
        assert 0.0 <= tone["entropy"] < noise["entropy"] <= 1.0

    def test_crest_higher_for_tone(self):
        rng = np.random.default_rng(2)
        t = np.arange(420) / 420.0
        tone = extract_freq_features(np.sin(2 * np.pi * 50 * t), 420.0)
        noise = extract_freq_features(rng.normal(size=420), 420.0)
        assert tone["spec_crest"] > 5 * noise["spec_crest"]

    def test_energy_definition(self, region):
        feats = extract_freq_features(region, 420.0)
        assert feats["energy"] == pytest.approx(np.sum(region**2))

    def test_silent_region_zeros(self):
        feats = extract_freq_features(np.zeros(100), 420.0)
        assert all(v == 0.0 for v in feats.values())

    def test_frequency_ratio_direction(self):
        t = np.arange(840) / 420.0
        low = extract_freq_features(np.sin(2 * np.pi * 20 * t), 420.0)
        high = extract_freq_features(np.sin(2 * np.pi * 180 * t), 420.0)
        assert high["frequency_ratio"] > 10 * max(low["frequency_ratio"], 1e-6)

    def test_frequency_ratio_finite_with_empty_low_band(self):
        """An empty low band yields 0.0, not a NaN/inf sentinel.

        An 8-sample region at fs=8 Hz has non-DC bins at 1..4 Hz, all at
        or above the fs/8 = 1 Hz split, so the low band holds no energy.
        """
        x = np.array([1.0, -1.0] * 4)  # pure Nyquist tone
        ratio = extract_freq_features(x, 8.0)["frequency_ratio"]
        assert np.isfinite(ratio)
        assert ratio == 0.0

    def test_too_short(self):
        with pytest.raises(ValueError):
            extract_freq_features(np.ones(3), 420.0)

    def test_invalid_fs(self):
        with pytest.raises(ValueError):
            extract_freq_features(np.ones(100), 0.0)


class TestExtractFeatures:
    def test_vector_order(self, region):
        vec = extract_features(region, 420.0)
        assert vec.shape == (24,)
        named = extract_time_features(region)
        named.update(extract_freq_features(region, 420.0))
        assert vec[FEATURE_NAMES.index("mean")] == pytest.approx(named["mean"])
        assert vec[FEATURE_NAMES.index("spec_centroid")] == pytest.approx(
            named["spec_centroid"]
        )

    def test_finite_for_typical_region(self, region):
        vec = extract_features(region, 420.0)
        assert np.all(np.isfinite(vec))
