"""Golden-regression tests for the collection pipeline's numerics.

A committed fixture pins the 24 Table II feature values and the 32x32
spectrogram image produced for one fixed ``(seed, device, utterance)``
triple. Any change to the DSP substrate, the channel simulation, the
region detector or the feature extractor that silently shifts these
numbers fails here first — and the engine's executors must all produce
byte-identical output, so a parallel refactor can't hide behind
"roughly equal" tolerances.

Regenerate the fixture (after an *intentional* numerics change) with::

    PYTHONPATH=src python tests/attack/test_golden_features.py --regenerate
"""

from pathlib import Path

import numpy as np
import pytest

from repro.attack.engine import collect_per_utterance_products
from repro.attack.features import FEATURE_NAMES
from repro.datasets import build_tess
from repro.phone import VibrationChannel

FIXTURE = Path(__file__).parent / "fixtures" / "golden_tess_oneplus7t_seed0.npz"

#: The fixed triple: corpus build arguments, device/placement, engine seed.
CORPUS_ARGS = dict(words_per_emotion=1, seed=123)
DEVICE = "oneplus7t"
SEED = 0


def _channel() -> VibrationChannel:
    return VibrationChannel(DEVICE, mode="loudspeaker", placement="table_top")


def _collect(executor: str, n_jobs: int = 2):
    """All per-utterance products for the fixed triple, spec-aligned."""
    corpus = build_tess(**CORPUS_ARGS)
    products, _ = collect_per_utterance_products(
        corpus,
        _channel(),
        seed=SEED,
        n_jobs=n_jobs if executor != "serial" else 1,
        executor=executor,
    )
    return corpus, products


def _golden_product(products):
    """The first utterance that yielded both a feature row and an image."""
    for index, label, features, image in products:
        if features is not None and image is not None:
            return index, label, features, image
    raise AssertionError("no utterance produced both products")


@pytest.fixture(scope="module")
def serial_products():
    return _collect("serial")


class TestGoldenFixture:
    def test_fixture_exists(self):
        assert FIXTURE.exists(), (
            f"golden fixture missing at {FIXTURE}; regenerate with "
            f"`PYTHONPATH=src python {__file__} --regenerate`"
        )

    def test_features_match_fixture(self, serial_products):
        _, products = serial_products
        index, label, features, image = _golden_product(products)
        with np.load(FIXTURE, allow_pickle=False) as bundle:
            assert int(bundle["spec_index"]) == index
            assert str(bundle["emotion"]) == label
            assert features.shape == (len(FEATURE_NAMES),)
            np.testing.assert_allclose(
                features, bundle["features"], rtol=1e-9, atol=1e-12,
                err_msg="Table II feature values drifted from the golden fixture",
            )
            np.testing.assert_allclose(
                image, bundle["image"], rtol=1e-9, atol=1e-12,
                err_msg="spectrogram image drifted from the golden fixture",
            )

    def test_feature_names_match_fixture(self):
        with np.load(FIXTURE, allow_pickle=False) as bundle:
            assert tuple(bundle["feature_names"]) == FEATURE_NAMES


class TestExecutorStability:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_byte_stable_across_executors(self, serial_products, executor):
        """Every product must be byte-identical at any worker count."""
        _, serial = serial_products
        _, parallel = _collect(executor)
        assert len(serial) == len(parallel)
        for (i_s, l_s, f_s, img_s), (i_p, l_p, f_p, img_p) in zip(serial, parallel):
            assert i_s == i_p and l_s == l_p
            for a, b in ((f_s, f_p), (img_s, img_p)):
                if a is None or b is None:
                    assert a is None and b is None
                    continue
                assert a.dtype == b.dtype and a.shape == b.shape
                assert a.tobytes() == b.tobytes()


def _regenerate() -> None:
    corpus, products = _collect("serial")
    index, label, features, image = _golden_product(products)
    spec = corpus.specs[index]
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        FIXTURE,
        features=features,
        image=image,
        spec_index=np.int64(index),
        emotion=np.str_(label),
        utterance_id=np.str_(spec.utterance_id),
        feature_names=np.array(FEATURE_NAMES),
    )
    print(f"wrote {FIXTURE} (utterance {spec.utterance_id!r}, emotion {label!r})")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
