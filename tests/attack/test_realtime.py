"""Tests for repro.attack.realtime (the streaming attack front end)."""

import numpy as np
import pytest

from repro.attack.realtime import StreamedRegion, StreamingAttack, StreamingDetector
from repro.datasets import build_tess
from repro.ml.forest import RandomForest
from repro.ml.preprocessing import clean_features
from repro.phone.channel import VibrationChannel
from repro.phone.recording import record_session
from repro.attack.pipeline import EmoLeakAttack


def burst_stream(fs=420.0, bursts=((2.0, 3.0), (5.0, 6.5)), duration=9.0,
                 amp=0.1, noise=0.003, seed=0):
    rng = np.random.default_rng(seed)
    n = int(duration * fs)
    t = np.arange(n) / fs
    x = 9.81 + noise * rng.normal(size=n)
    for start, end in bursts:
        mask = (t >= start) & (t < end)
        x[mask] += amp * np.sin(2 * np.pi * 60 * t[mask])
    return x


class TestStreamingDetector:
    def test_detects_bursts(self):
        detector = StreamingDetector(fs=420.0)
        regions = detector.process(burst_stream())
        regions += detector.flush()
        assert len(regions) == 2

    def test_chunking_invariance(self):
        """Any chunk size yields the same regions."""
        stream = burst_stream()
        whole = StreamingDetector(fs=420.0)
        regions_whole = whole.process(stream) + whole.flush()
        chunked = StreamingDetector(fs=420.0)
        regions_chunked = []
        for start in range(0, stream.size, 97):
            regions_chunked += chunked.process(stream[start : start + 97])
        regions_chunked += chunked.flush()
        assert [(r.start, r.end) for r in regions_whole] == [
            (r.start, r.end) for r in regions_chunked
        ]

    def test_region_boundaries_near_truth(self):
        detector = StreamingDetector(fs=420.0)
        regions = detector.process(burst_stream()) + detector.flush()
        first = regions[0]
        assert first.start_s == pytest.approx(2.0, abs=0.3)
        assert first.end_s == pytest.approx(3.0, abs=0.3)

    def test_absolute_positions_across_chunks(self):
        detector = StreamingDetector(fs=420.0)
        stream = burst_stream()
        half = stream.size // 2
        regions = detector.process(stream[:half])
        regions += detector.process(stream[half:])
        regions += detector.flush()
        assert detector.position == stream.size
        assert all(r.end <= stream.size for r in regions)

    def test_max_duration_bounds_memory(self):
        fs = 420.0
        detector = StreamingDetector(fs=fs, max_duration_s=0.5)
        t = np.arange(int(4 * fs)) / fs
        # One continuous 3-second tone after 0.5 s of noise floor.
        stream = 9.81 + 0.003 * np.random.default_rng(0).normal(size=t.size)
        stream[int(0.5 * fs):] += 0.1 * np.sin(2 * np.pi * 60 * t[int(0.5 * fs):])
        regions = detector.process(stream) + detector.flush()
        assert len(regions) >= 2  # force-closed into segments
        assert all(r.duration_s <= 0.55 for r in regions)

    def test_silence_only_no_regions(self):
        detector = StreamingDetector(fs=420.0)
        regions = detector.process(burst_stream(bursts=())) + detector.flush()
        assert regions == []

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StreamingDetector(fs=0.0)
        with pytest.raises(ValueError):
            StreamingDetector(fs=420.0, threshold_factor=1.0)
        with pytest.raises(ValueError):
            StreamingDetector(fs=420.0, release_factor=0.0)

    def test_rejects_2d_chunk(self):
        with pytest.raises(ValueError):
            StreamingDetector(fs=420.0).process(np.zeros((2, 2)))


class TestStreamingAttack:
    def test_events_without_classifier(self):
        attack = StreamingAttack(StreamingDetector(fs=420.0))
        events = attack.process(burst_stream()) + attack.finish()
        assert len(events) == 2
        region, features, prediction = events[0]
        assert isinstance(region, StreamedRegion)
        assert features.shape == (24,)
        assert prediction is None

    def test_end_to_end_with_classifier(self):
        """The full on-device loop classifies a live session above chance."""
        corpus = build_tess(words_per_emotion=8, seed=1)
        channel = VibrationChannel("oneplus7t")
        # Offline: train on attacker data.
        train = EmoLeakAttack(channel, seed=0).collect_features(corpus)
        X, y, _ = clean_features(train.X, train.y)
        model = RandomForest(n_estimators=10, seed=0).fit(X, y)
        # Online: stream a fresh session chunk by chunk.
        session = record_session(
            corpus, channel, specs=corpus.specs[:21], seed=7
        )
        attack = StreamingAttack(
            StreamingDetector(fs=session.fs, threshold_factor=3.0), model
        )
        for start in range(0, session.trace.size, 256):
            attack.process(session.trace[start : start + 256])
        attack.finish()
        assert len(attack.events) >= 10
        correct = 0
        labelled = 0
        for region, _, prediction in attack.events:
            center = 0.5 * (region.start_s + region.end_s)
            truth = session.label_at(center)
            if truth is None:
                continue
            labelled += 1
            if prediction == truth:
                correct += 1
        assert labelled >= 8
        assert correct / labelled > 2 * (1.0 / 7.0)
