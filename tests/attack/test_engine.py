"""Tests for the parallel collection engine (repro.attack.engine)."""

import numpy as np
import pytest

from repro.attack.engine import (
    CollectionCache,
    CollectionStats,
    collect_datasets,
    collection_key,
    global_stats,
    iter_region_samples,
    reset_global_stats,
    run_tasks,
)
from repro.attack.pipeline import (
    collect_feature_dataset,
    collect_spectrogram_dataset,
)
from repro.attack.regions import RegionDetector
from repro.eval.io import load_collection, save_collection
from repro.eval.suite import run_table


def _subset(corpus, n):
    return corpus.specs[:n]


class TestExecutors:
    def test_run_tasks_serial_thread_equal(self):
        items = list(range(20))

        def fn(i):
            return i * i

        assert run_tasks(fn, items, 1, "serial") == run_tasks(fn, items, 4, "thread")

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_matches_serial(self, tiny_tess, loud_channel, executor):
        specs = _subset(tiny_tess, 8)
        serial = collect_datasets(tiny_tess, loud_channel, specs=specs, seed=3)
        para = collect_datasets(
            tiny_tess, loud_channel, specs=specs, seed=3,
            n_jobs=2, executor=executor,
        )
        assert np.array_equal(serial.features.X, para.features.X)
        assert np.array_equal(serial.features.y, para.features.y)
        assert np.array_equal(serial.spectrograms.images, para.spectrograms.images)
        assert np.array_equal(serial.spectrograms.y, para.spectrograms.y)

    def test_continuous_thread_matches_serial(self, tiny_tess, ear_channel):
        specs = _subset(tiny_tess, 6)
        serial = collect_datasets(tiny_tess, ear_channel, specs=specs, seed=2)
        para = collect_datasets(
            tiny_tess, ear_channel, specs=specs, seed=2, n_jobs=2, executor="thread"
        )
        assert np.array_equal(serial.features.X, para.features.X)
        assert np.array_equal(serial.spectrograms.images, para.spectrograms.images)

    def test_unknown_executor_rejected(self, tiny_tess, loud_channel):
        with pytest.raises(ValueError):
            collect_datasets(
                tiny_tess, loud_channel, specs=_subset(tiny_tess, 2),
                n_jobs=2, executor="rayon",
            )


class TestSharedPass:
    def test_matches_independent_collectors(self, tiny_tess, loud_channel):
        specs = _subset(tiny_tess, 8)
        shared = collect_datasets(tiny_tess, loud_channel, specs=specs, seed=7)
        features = collect_feature_dataset(
            tiny_tess, loud_channel, specs=specs, seed=7
        )
        spectrograms = collect_spectrogram_dataset(
            tiny_tess, loud_channel, specs=specs, seed=7
        )
        assert np.array_equal(shared.features.X, features.X)
        assert np.array_equal(shared.features.y, features.y)
        assert np.array_equal(shared.spectrograms.images, spectrograms.images)
        assert np.array_equal(shared.spectrograms.y, spectrograms.y)

    def test_stats_attached(self, tiny_tess, loud_channel):
        specs = _subset(tiny_tess, 5)
        result = collect_datasets(tiny_tess, loud_channel, specs=specs, seed=1)
        assert result.stats is not None
        assert result.stats.transmits == 5
        assert result.stats.renders == 5
        assert result.stats.total_s > 0
        assert result.features.stats is result.stats
        assert "transmits=5" in result.stats.summary()

    def test_iter_region_samples_labels(self, tiny_tess, loud_channel):
        specs = _subset(tiny_tess, 5)
        rows = list(
            iter_region_samples(
                tiny_tess, loud_channel, specs,
                RegionDetector.for_setting("table_top"), False, 1,
            )
        )
        assert 0 < len(rows) <= 5
        assert all(label in set(tiny_tess.emotions) for label, _, _ in rows)


class TestCache:
    def test_hit_returns_same_object(self, tiny_tess, loud_channel):
        cache = CollectionCache()
        specs = _subset(tiny_tess, 6)
        first = collect_datasets(
            tiny_tess, loud_channel, specs=specs, seed=4, cache=cache
        )
        second = collect_datasets(
            tiny_tess, loud_channel, specs=specs, seed=4, cache=cache
        )
        assert second is first
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_key_separates_seeds_and_devices(self, tiny_tess, loud_channel):
        specs = _subset(tiny_tess, 4)
        detector = RegionDetector.for_setting("table_top")
        k0 = collection_key(tiny_tess, loud_channel, specs, detector, False, 0)
        k1 = collection_key(tiny_tess, loud_channel, specs, detector, False, 1)
        assert k0 != k1
        assert "oneplus7t" in k0 and "-s0-" in k0

    def test_disk_roundtrip(self, tiny_tess, loud_channel, tmp_path):
        specs = _subset(tiny_tess, 5)
        warm = CollectionCache(cache_dir=tmp_path)
        first = collect_datasets(
            tiny_tess, loud_channel, specs=specs, seed=9, cache=warm
        )
        assert len(list(tmp_path.glob("*.npz"))) == 1
        # A fresh cache in a "new process" reloads the pass from disk.
        cold = CollectionCache(cache_dir=tmp_path)
        second = collect_datasets(
            tiny_tess, loud_channel, specs=specs, seed=9, cache=cold
        )
        assert cold.hits == 1 and cold.misses == 0
        assert np.array_equal(first.features.X, second.features.X)
        assert np.array_equal(first.spectrograms.images, second.spectrograms.images)

    def test_save_load_collection(self, tiny_tess, loud_channel, tmp_path):
        result = collect_datasets(
            tiny_tess, loud_channel, specs=_subset(tiny_tess, 5), seed=6
        )
        path = tmp_path / "pass.npz"
        save_collection(result, path)
        loaded = load_collection(path)
        assert np.array_equal(result.features.X, loaded.features.X)
        assert np.array_equal(result.features.y, loaded.features.y)
        assert np.array_equal(result.spectrograms.images, loaded.spectrograms.images)
        assert loaded.features.n_played == result.features.n_played
        assert loaded.features.fs == result.features.fs


class TestStats:
    def test_add_and_summary(self):
        a = CollectionStats(transmits=3, renders=3, total_s=1.0)
        b = CollectionStats(transmits=2, renders=2, cache_hits=1)
        a.add(b)
        assert a.transmits == 5 and a.cache_hits == 1

    def test_one_pass_per_scenario(self):
        """run_table re-collects once per scenario, not once per classifier."""
        reset_global_stats()
        suite = run_table(
            "IV",
            subsample=3,
            classifiers=("logistic", "cnn_spectrogram"),
            fast=True,
            cache=CollectionCache(),
        )
        assert len(suite.cells) == 2
        stats = global_stats()
        # Table IV has one scenario (CREMA-D, 6 emotions); both classifier
        # rows must share one 18-utterance pass (3 per class x 6 emotions).
        # The two-phase run_table collects the scenario exactly once up
        # front and hands the bundle to every cell, so the second row no
        # longer needs even a cache hit.
        assert stats.transmits == 18
        assert stats.cache_hits == 0
        assert stats.cache_misses == 1
