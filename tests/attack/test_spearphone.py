"""Tests for the Spearphone prior-work baseline."""

import pytest

from repro.attack.spearphone import SpearphoneBaseline, collect_speaker_dataset
from repro.datasets import build_cremad
from repro.ml.forest import RandomForest
from repro.phone.channel import VibrationChannel


@pytest.fixture(scope="module")
def mixed_corpus():
    """A corpus with both sexes (CREMA-D style), small for speed."""
    return build_cremad(n_clips=180, seed=2)


@pytest.fixture(scope="module")
def channel():
    return VibrationChannel("oneplus7t")


class TestCollectSpeakerDataset:
    def test_alignment(self, mixed_corpus, channel):
        dataset, speakers, genders = collect_speaker_dataset(
            mixed_corpus, channel, specs=mixed_corpus.specs[:30], seed=0
        )
        assert dataset.X.shape[0] == speakers.shape[0] == genders.shape[0]
        assert set(genders) <= {"male", "female"}

    def test_gender_labels_match_voices(self, mixed_corpus, channel):
        dataset, speakers, genders = collect_speaker_dataset(
            mixed_corpus, channel, specs=mixed_corpus.specs[:30], seed=0
        )
        for sid, gender in zip(speakers, genders):
            f0 = mixed_corpus.speakers[sid].base_f0_hz
            assert (gender == "female") == (f0 > 160.0)


class TestSpearphoneBaseline:
    def test_gender_identification_works(self, mixed_corpus, channel):
        """Spearphone's headline finding: gender separates well."""
        baseline = SpearphoneBaseline(channel, seed=0)
        accuracy = baseline.gender_accuracy(
            mixed_corpus, RandomForest(n_estimators=10, seed=0)
        )
        assert accuracy > 0.75  # chance = 0.5

    def test_speaker_identification_mixed_sexes(self, channel):
        """Speaker ID beats chance when the set spans both sexes.

        Note: same-sex speaker ID is weak here — the Table II features
        keep mostly level/envelope information through the aliasing
        channel, while Spearphone's richer feature set also used fine
        spectral detail. The cross-sex case (F0 an octave apart) is the
        part of the prior-work result this substrate reproduces.
        """
        corpus = build_cremad(n_clips=2200, seed=2)
        # Two male + two female actors (CREMA-D's first 48 are male).
        speakers = ("A0001", "A0002", "A0049", "A0050")
        specs = [s for s in corpus.specs if s.speaker_id in speakers]
        from dataclasses import replace

        corpus = replace(corpus, specs=specs)
        baseline = SpearphoneBaseline(channel, seed=0)
        accuracy = baseline.speaker_accuracy(
            corpus, RandomForest(n_estimators=10, seed=0)
        )
        assert accuracy > 1.3 * (1.0 / len(speakers))
