"""Golden-regression test for *defended* collection numerics.

Extends the golden fixture family (``test_golden_batch.py``) to the
defense path: the committed fixture pins the feature matrix and image
stack collected through the composed ``50 Hz cap + 20 Hz low-pass``
stack for the fixed ``(seed 0, oneplus7t, tiny TESS)`` triple. The
defended pipeline must reproduce the fixture byte-for-byte across
executors and across the batched / per-utterance data planes — the same
contract the undefended golden suite enforces, now with the defense's
channel transform and stream postprocess in the loop.

Regenerate the fixture (after an *intentional* numerics change) with::

    PYTHONPATH=src python tests/attack/test_golden_defended.py --regenerate
"""

from pathlib import Path

import numpy as np
import pytest

from repro.attack.engine import collect_datasets
from repro.attack.features import FEATURE_NAMES
from repro.attack.privacy_gate import DefenseConfig
from repro.datasets import build_tess
from repro.phone import VibrationChannel

FIXTURE = (
    Path(__file__).parent
    / "fixtures"
    / "golden_tess_oneplus7t_seed0_cap50lpf20.npz"
)

#: The fixed triple plus the pinned defense stack.
CORPUS_ARGS = dict(words_per_emotion=1, seed=123)
DEVICE = "oneplus7t"
SEED = 0
DEFENSE_CONFIG = DefenseConfig(rate_cap_hz=50.0, lowpass_hz=20.0)


def _channel() -> VibrationChannel:
    return VibrationChannel(DEVICE, mode="loudspeaker", placement="table_top")


def _collect(pipeline: str, executor: str = "serial", n_jobs: int = 1,
             batch_chunk=None):
    corpus = build_tess(**CORPUS_ARGS)
    return collect_datasets(
        corpus,
        _channel(),
        seed=SEED,
        pipeline=pipeline,
        batch_chunk=batch_chunk,
        executor=executor,
        n_jobs=n_jobs,
        defense=DEFENSE_CONFIG.build(),
    )


@pytest.fixture(scope="module")
def defended_result():
    return _collect("batched")


class TestGoldenDefendedFixture:
    def test_fixture_exists(self):
        assert FIXTURE.exists(), (
            f"golden fixture missing at {FIXTURE}; regenerate with "
            f"`PYTHONPATH=src python {__file__} --regenerate`"
        )

    def test_defended_matrix_matches_fixture(self, defended_result):
        with np.load(FIXTURE, allow_pickle=False) as bundle:
            assert defended_result.features.X.shape == bundle["X"].shape
            assert defended_result.features.X.tobytes() == bundle["X"].tobytes()
            assert list(defended_result.features.y) == list(bundle["y"])
            assert (
                defended_result.spectrograms.images.tobytes()
                == bundle["images"].tobytes()
            )
            assert tuple(bundle["feature_names"]) == FEATURE_NAMES

    def test_defended_differs_from_undefended_golden(self, defended_result):
        """Sanity: the defense actually changed the numerics on disk."""
        undefended = (
            Path(__file__).parent
            / "fixtures"
            / "golden_tess_oneplus7t_seed0_batch.npz"
        )
        with np.load(undefended, allow_pickle=False) as bundle:
            assert (
                defended_result.features.X.tobytes() != bundle["X"].tobytes()
            )

    def test_per_utterance_reference_matches_fixture(self):
        ref = _collect("per_utterance")
        with np.load(FIXTURE, allow_pickle=False) as bundle:
            assert ref.features.X.tobytes() == bundle["X"].tobytes()
            assert ref.spectrograms.images.tobytes() == bundle["images"].tobytes()


class TestDefendedStability:
    @pytest.mark.parametrize("executor,n_jobs", [("thread", 2), ("process", 2)])
    def test_byte_stable_across_executors(self, defended_result, executor, n_jobs):
        other = _collect("batched", executor=executor, n_jobs=n_jobs, batch_chunk=4)
        assert other.features.X.tobytes() == defended_result.features.X.tobytes()
        assert (
            other.spectrograms.images.tobytes()
            == defended_result.spectrograms.images.tobytes()
        )

    @pytest.mark.parametrize("chunk", [1, 3, 64])
    def test_byte_stable_across_chunk_sizes(self, defended_result, chunk):
        other = _collect("batched", batch_chunk=chunk)
        assert other.features.X.tobytes() == defended_result.features.X.tobytes()
        assert (
            other.spectrograms.images.tobytes()
            == defended_result.spectrograms.images.tobytes()
        )


def _regenerate() -> None:
    result = _collect("batched")
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        FIXTURE,
        X=result.features.X,
        y=np.array(result.features.y),
        images=result.spectrograms.images,
        feature_names=np.array(FEATURE_NAMES),
    )
    print(
        f"wrote {FIXTURE} ({result.features.X.shape[0]} feature rows, "
        f"{result.spectrograms.images.shape[0]} images)"
    )


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
