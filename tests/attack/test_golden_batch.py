"""Golden-regression tests for the batched data plane's numerics.

Extends the golden fixture family (see ``test_golden_features.py``) with
a *multi-utterance batched* variant: the committed fixture pins the full
feature matrix and image stack collected through the batched pipeline
for the fixed ``(seed 0, oneplus7t, tiny TESS)`` triple. The batched
pipeline under the golden float64 policy must reproduce the fixture
byte-for-byte across executors and chunk sizes — and must equal the
per-utterance reference exactly, so this fixture pins both paths at
once.

Regenerate the fixture (after an *intentional* numerics change) with::

    PYTHONPATH=src python tests/attack/test_golden_batch.py --regenerate
"""

from pathlib import Path

import numpy as np
import pytest

from repro.attack.engine import collect_datasets
from repro.attack.features import FEATURE_NAMES
from repro.datasets import build_tess
from repro.phone import VibrationChannel

FIXTURE = Path(__file__).parent / "fixtures" / "golden_tess_oneplus7t_seed0_batch.npz"

#: The fixed triple: corpus build arguments, device/placement, engine seed.
CORPUS_ARGS = dict(words_per_emotion=1, seed=123)
DEVICE = "oneplus7t"
SEED = 0


def _channel() -> VibrationChannel:
    return VibrationChannel(DEVICE, mode="loudspeaker", placement="table_top")


def _collect(pipeline: str, executor: str = "serial", n_jobs: int = 1,
             batch_chunk=None):
    corpus = build_tess(**CORPUS_ARGS)
    return collect_datasets(
        corpus,
        _channel(),
        seed=SEED,
        pipeline=pipeline,
        batch_chunk=batch_chunk,
        executor=executor,
        n_jobs=n_jobs,
    )


@pytest.fixture(scope="module")
def batched_result():
    return _collect("batched")


class TestGoldenBatchFixture:
    def test_fixture_exists(self):
        assert FIXTURE.exists(), (
            f"golden fixture missing at {FIXTURE}; regenerate with "
            f"`PYTHONPATH=src python {__file__} --regenerate`"
        )

    def test_batched_matrix_matches_fixture(self, batched_result):
        with np.load(FIXTURE, allow_pickle=False) as bundle:
            assert batched_result.features.X.shape == bundle["X"].shape
            assert batched_result.features.X.tobytes() == bundle["X"].tobytes()
            assert list(batched_result.features.y) == list(bundle["y"])
            assert (
                batched_result.spectrograms.images.tobytes()
                == bundle["images"].tobytes()
            )
            assert tuple(bundle["feature_names"]) == FEATURE_NAMES

    def test_per_utterance_reference_matches_fixture(self):
        """The fixture pins the reference path too (golden = identical)."""
        ref = _collect("per_utterance")
        with np.load(FIXTURE, allow_pickle=False) as bundle:
            assert ref.features.X.tobytes() == bundle["X"].tobytes()
            assert ref.spectrograms.images.tobytes() == bundle["images"].tobytes()


class TestBatchedStability:
    @pytest.mark.parametrize("executor,n_jobs", [("thread", 2), ("process", 2)])
    def test_byte_stable_across_executors(self, batched_result, executor, n_jobs):
        other = _collect("batched", executor=executor, n_jobs=n_jobs, batch_chunk=4)
        assert (
            other.features.X.tobytes() == batched_result.features.X.tobytes()
        )
        assert (
            other.spectrograms.images.tobytes()
            == batched_result.spectrograms.images.tobytes()
        )

    @pytest.mark.parametrize("chunk", [1, 3, 64])
    def test_byte_stable_across_chunk_sizes(self, batched_result, chunk):
        other = _collect("batched", batch_chunk=chunk)
        assert (
            other.features.X.tobytes() == batched_result.features.X.tobytes()
        )
        assert (
            other.spectrograms.images.tobytes()
            == batched_result.spectrograms.images.tobytes()
        )


def _regenerate() -> None:
    result = _collect("batched")
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        FIXTURE,
        X=result.features.X,
        y=np.array(result.features.y),
        images=result.spectrograms.images,
        feature_names=np.array(FEATURE_NAMES),
    )
    print(
        f"wrote {FIXTURE} ({result.features.X.shape[0]} feature rows, "
        f"{result.spectrograms.images.shape[0]} images)"
    )


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
