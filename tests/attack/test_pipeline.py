"""Tests for repro.attack.pipeline and repro.attack.scenarios."""

import numpy as np
import pytest

from repro.attack.features import FEATURE_NAMES
from repro.attack.pipeline import (
    EmoLeakAttack,
    FeatureDataset,
    SpectrogramDataset,
    collect_feature_dataset,
    collect_spectrogram_dataset,
)
from repro.attack.scenarios import SCENARIOS, get_scenario
from repro.phone.channel import Placement, SpeakerMode, VibrationChannel


class TestFeatureDataset:
    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FeatureDataset(X=np.ones((3, 24)), y=np.array(["a"]))

    def test_extraction_rate(self):
        ds = FeatureDataset(X=np.ones((8, 24)), y=np.array(["a"] * 8), n_played=10)
        assert ds.extraction_rate == pytest.approx(0.8)


class TestCollectFeatures:
    def test_per_utterance_tabletop(self, tiny_tess, loud_channel):
        ds = collect_feature_dataset(tiny_tess, loud_channel, seed=1)
        assert ds.X.shape[1] == len(FEATURE_NAMES)
        assert ds.X.shape[0] == ds.y.shape[0]
        assert ds.extraction_rate > 0.85  # paper: ~90 % table-top

    def test_labels_from_corpus(self, tiny_tess, loud_channel):
        ds = collect_feature_dataset(tiny_tess, loud_channel, seed=1)
        assert set(ds.y) <= set(tiny_tess.emotions)

    def test_specs_subset(self, tiny_tess, loud_channel):
        subset = tiny_tess.specs[:6]
        ds = collect_feature_dataset(tiny_tess, loud_channel, specs=subset, seed=1)
        assert ds.n_played == 6
        assert ds.X.shape[0] <= 6

    def test_continuous_session_mode(self, tiny_tess, ear_channel):
        ds = collect_feature_dataset(
            tiny_tess, ear_channel, specs=tiny_tess.specs[:10], seed=1
        )
        # Handheld defaults to continuous collection; regions are labelled
        # from the playback log.
        assert set(ds.y) <= set(tiny_tess.emotions)

    def test_deterministic(self, tiny_tess, loud_channel):
        a = collect_feature_dataset(
            tiny_tess, loud_channel, specs=tiny_tess.specs[:5], seed=3
        )
        b = collect_feature_dataset(
            tiny_tess, loud_channel, specs=tiny_tess.specs[:5], seed=3
        )
        assert np.array_equal(a.X, b.X)

    def test_feature_highpass_changes_time_features(self, tiny_tess, loud_channel):
        raw = collect_feature_dataset(
            tiny_tess, loud_channel, specs=tiny_tess.specs[:5], seed=3
        )
        filtered = collect_feature_dataset(
            tiny_tess,
            loud_channel,
            specs=tiny_tess.specs[:5],
            seed=3,
            feature_highpass_hz=1.0,
        )
        mean_col = FEATURE_NAMES.index("mean")
        # Gravity offset survives unfiltered, is removed by the 1 Hz HPF.
        assert np.all(raw.X[:, mean_col] > 5.0)
        assert np.all(np.abs(filtered.X[:, mean_col]) < 1.0)


class TestCollectSpectrograms:
    def test_image_stack(self, tiny_tess, loud_channel):
        ds = collect_spectrogram_dataset(
            tiny_tess, loud_channel, specs=tiny_tess.specs[:8], seed=1
        )
        assert ds.images.ndim == 4
        assert ds.images.shape[1:] == (32, 32, 1)
        assert ds.images.shape[0] == ds.y.shape[0]

    def test_custom_size(self, tiny_tess, loud_channel):
        ds = collect_spectrogram_dataset(
            tiny_tess, loud_channel, specs=tiny_tess.specs[:4], size=16, seed=1
        )
        assert ds.images.shape[1:] == (16, 16, 1)

    def test_values_normalised(self, tiny_tess, loud_channel):
        ds = collect_spectrogram_dataset(
            tiny_tess, loud_channel, specs=tiny_tess.specs[:4], seed=1
        )
        assert ds.images.min() >= 0.0 and ds.images.max() <= 1.0


class TestEmoLeakAttack:
    def test_end_to_end_objects(self, tiny_tess, loud_channel):
        attack = EmoLeakAttack(loud_channel, seed=2)
        features = attack.collect_features(tiny_tess, specs=tiny_tess.specs[:6])
        spectrograms = attack.collect_spectrograms(tiny_tess, specs=tiny_tess.specs[:6])
        assert isinstance(features, FeatureDataset)
        assert isinstance(spectrograms, SpectrogramDataset)

    def test_default_detector_matches_placement(self, ear_channel):
        attack = EmoLeakAttack(ear_channel)
        assert attack.detector.highpass_hz == 8.0


class TestScenarios:
    def test_catalogue_size(self):
        # 2 (Table III) + 1 (IV) + 5 (V) + 3 (VI) = 11 canonical cells,
        # plus the 3 sibling-attack heads (speaker/gender/content).
        assert len(SCENARIOS) == 14

    def test_loudspeaker_paired_with_tabletop(self):
        for scenario in SCENARIOS.values():
            if scenario.mode is SpeakerMode.LOUDSPEAKER:
                assert scenario.placement is Placement.TABLE_TOP
            else:
                assert scenario.placement is Placement.HANDHELD

    def test_channel_construction(self):
        scenario = get_scenario("tess-loud-oneplus7t")
        channel = scenario.channel()
        assert isinstance(channel, VibrationChannel)
        assert channel.device.name == "oneplus7t"

    def test_channel_rate_override(self):
        channel = get_scenario("tess-loud-oneplus7t").channel(sample_rate=200.0)
        assert channel.accel_fs == 200.0

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            get_scenario("tess-loud-iphone")

    def test_ear_scenarios_only_oneplus(self):
        for scenario in SCENARIOS.values():
            if scenario.mode is SpeakerMode.EAR_SPEAKER:
                assert scenario.device.startswith("oneplus")
