"""Tests for repro.attack.augmentation."""

import numpy as np
import pytest

from repro.attack.augmentation import (
    RegionAugmenter,
    augment_region,
    augmented_feature_dataset,
)
from repro.attack.features import FEATURE_NAMES
from repro.phone.channel import VibrationChannel


def region(n=400, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / 420.0
    return 9.81 + 0.1 * np.sin(2 * np.pi * 60 * t) + 0.005 * rng.normal(size=n)


class TestAugmentRegion:
    def test_preserves_offset(self):
        x = region()
        out = augment_region(x, np.random.default_rng(1))
        assert out.mean() == pytest.approx(x.mean(), abs=0.02)

    def test_length_close(self):
        x = region()
        out = augment_region(x, np.random.default_rng(2), crop_fraction=0.1)
        assert 0.9 * x.size <= out.size <= x.size

    def test_different_draws_differ(self):
        x = region()
        a = augment_region(x, np.random.default_rng(3))
        b = augment_region(x, np.random.default_rng(4))
        assert a.shape != b.shape or not np.allclose(a, b)

    def test_deterministic_given_rng(self):
        x = region()
        a = augment_region(x, np.random.default_rng(5))
        b = augment_region(x, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_no_op_settings(self):
        x = region()
        out = augment_region(
            x, np.random.default_rng(0),
            noise_rms=0.0, scale_sigma=0.0, max_shift_fraction=0.0,
            crop_fraction=0.0,
        )
        assert np.allclose(out, x)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            augment_region(np.ones(4), np.random.default_rng(0))


class TestRegionAugmenter:
    def test_row_count(self):
        augmenter = RegionAugmenter(copies=3, seed=0)
        X, y = augmenter.expand([region(seed=i) for i in range(5)],
                                ["a", "b", "a", "b", "a"], 420.0)
        assert X.shape == (5 * 4, len(FEATURE_NAMES))
        assert y.shape == (20,)

    def test_labels_replicated(self):
        augmenter = RegionAugmenter(copies=1, seed=0)
        X, y = augmenter.expand([region()], ["angry"], 420.0)
        assert list(y) == ["angry", "angry"]

    def test_zero_copies_passthrough(self):
        augmenter = RegionAugmenter(copies=0, seed=0)
        X, y = augmenter.expand([region()], ["sad"], 420.0)
        assert X.shape[0] == 1

    def test_empty(self):
        X, y = RegionAugmenter().expand([], [], 420.0)
        assert X.shape[0] == 0

    def test_misaligned(self):
        with pytest.raises(ValueError):
            RegionAugmenter().expand([region()], [], 420.0)

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            RegionAugmenter(copies=-1)


class TestAugmentedCollection:
    def test_dataset_expansion(self, tiny_tess):
        channel = VibrationChannel("oneplus7t")
        augmenter = RegionAugmenter(copies=2, seed=1)
        plain_size = len(tiny_tess.specs[:10])
        dataset = augmented_feature_dataset(
            tiny_tess, channel, augmenter, specs=tiny_tess.specs[:10], seed=1
        )
        assert dataset.X.shape[0] >= 2 * plain_size  # ~3x minus misses
        assert set(dataset.y) <= set(tiny_tess.emotions)

    def test_augmented_rows_stay_plausible(self, tiny_tess):
        """Augmented features live near the originals (same scale)."""
        channel = VibrationChannel("oneplus7t")
        dataset = augmented_feature_dataset(
            tiny_tess, channel, RegionAugmenter(copies=1, seed=2),
            specs=tiny_tess.specs[:8], seed=2,
        )
        mean_col = FEATURE_NAMES.index("mean")
        assert np.all(dataset.X[:, mean_col] > 9.0)
        assert np.all(dataset.X[:, mean_col] < 10.5)
