"""Tests for repro.attack.models (the paper's CNN architectures)."""

import numpy as np
import pytest

from repro.attack.models import build_feature_cnn, build_spectrogram_cnn
from repro.nn.layers import BatchNorm, Conv1D, Conv2D, Dense, Dropout, MaxPool1D, MaxPool2D


class TestSpectrogramCNN:
    def test_paper_layer_counts(self):
        model = build_spectrogram_cnn(7)
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        denses = [l for l in model.layers if isinstance(l, Dense)]
        pools = [l for l in model.layers if isinstance(l, MaxPool2D)]
        assert len(convs) == 3
        assert len(denses) == 3  # two hidden 32s + output
        assert len(pools) == 3

    def test_paper_filter_sizes(self):
        model = build_spectrogram_cnn(7)
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        assert [c.filters for c in convs] == [128, 128, 64]
        assert (convs[0].kh, convs[0].kw) == (1, 1)

    def test_forward_shape(self):
        model = build_spectrogram_cnn(7, width_scale=0.125)
        model.build((32, 32, 1))
        out = model.predict_proba(np.random.default_rng(0).normal(size=(2, 32, 32, 1)))
        assert out.shape == (2, 7)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_width_scale(self):
        model = build_spectrogram_cnn(7, width_scale=0.25)
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        assert [c.filters for c in convs] == [32, 32, 16]

    def test_dropout_rates(self):
        model = build_spectrogram_cnn(7)
        drops = [l.rate for l in model.layers if isinstance(l, Dropout)]
        assert drops == [0.2, 0.2, 0.2, 0.25]

    def test_invalid_classes(self):
        with pytest.raises(ValueError):
            build_spectrogram_cnn(1)


class TestFeatureCNN:
    def test_paper_layer_counts(self):
        model = build_feature_cnn(7)
        convs = [l for l in model.layers if isinstance(l, Conv1D)]
        denses = [l for l in model.layers if isinstance(l, Dense)]
        assert len(convs) == 5
        assert len(denses) == 1

    def test_paper_filter_sizes(self):
        model = build_feature_cnn(7)
        convs = [l for l in model.layers if isinstance(l, Conv1D)]
        assert [c.filters for c in convs] == [256, 256, 128, 64, 64]

    def test_batchnorm_after_third_conv(self):
        model = build_feature_cnn(7)
        conv_positions = [
            i for i, l in enumerate(model.layers) if isinstance(l, Conv1D)
        ]
        third = conv_positions[2]
        assert isinstance(model.layers[third + 1], BatchNorm)

    def test_pool_sizes(self):
        model = build_feature_cnn(7)
        pools = [l.p for l in model.layers if isinstance(l, MaxPool1D)]
        assert pools == [2, 8]

    def test_forward_shape_on_24_features(self):
        model = build_feature_cnn(6, width_scale=0.25)
        model.build((24, 1))
        out = model.predict_proba(np.random.default_rng(0).normal(size=(3, 24, 1)))
        assert out.shape == (3, 6)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_feature_cnn(7, width_scale=0.0)
