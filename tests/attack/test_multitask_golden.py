"""Golden parity: the multi-task label plane must not move emotion bytes.

The fixtures under ``tests/attack/fixtures/`` were generated *before*
the task dimension existed. The emotion task (the default) must stay
byte-identical — features, spectrograms, labels, cache keys — across
both collection protocols, and the re-label layer must serve secondary
tasks without a single extra render or transmit.
"""

import os

import numpy as np
import pytest

from repro.attack.engine import (
    CollectionCache,
    _default_detector,
    collect_datasets,
    collection_key,
)
from repro.datasets import build_savee, build_tess
from repro.obs import metrics
from repro.phone.channel import VibrationChannel

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: The exact cache key the SAVEE fixture was collected under; pinned so a
#: key-schema change that would silently cold every existing emotion
#: cache fails loudly here.
SAVEE_GOLDEN_KEY = "savee-oneplus7t-table_top-420hz-s0-a774c7aec7cb1e93"


def _savee_setup():
    corpus = build_savee().subsample(per_class=3, seed=0)
    channel = VibrationChannel("oneplus7t")
    return corpus, channel


def _handheld_setup():
    corpus = build_tess(words_per_emotion=2, seed=123)
    channel = VibrationChannel(
        "oneplus7t", mode="ear_speaker", placement="handheld"
    )
    return corpus, channel


def _assert_matches_fixture(result, fixture):
    assert result.features.X.tobytes() == fixture["X"].tobytes()
    assert result.features.y.tolist() == fixture["y_features"].tolist()
    assert result.spectrograms.images.tobytes() == fixture["images"].tobytes()
    assert result.spectrograms.y.tolist() == fixture["y_images"].tolist()
    assert result.features.n_played == int(fixture["n_played"])


class TestEmotionParity:
    def test_savee_tabletop_byte_identical(self):
        fixture = np.load(os.path.join(FIXTURES, "golden_multitask_emotion_savee.npz"))
        corpus, channel = _savee_setup()
        result = collect_datasets(corpus, channel, seed=0)
        _assert_matches_fixture(result, fixture)

    def test_savee_explicit_emotion_task_identical(self):
        fixture = np.load(os.path.join(FIXTURES, "golden_multitask_emotion_savee.npz"))
        corpus, channel = _savee_setup()
        result = collect_datasets(corpus, channel, seed=0, task="emotion")
        _assert_matches_fixture(result, fixture)

    def test_handheld_continuous_byte_identical(self):
        fixture = np.load(
            os.path.join(FIXTURES, "golden_multitask_emotion_handheld.npz")
        )
        corpus, channel = _handheld_setup()
        result = collect_datasets(corpus, channel, seed=0)
        _assert_matches_fixture(result, fixture)


def _key(corpus, channel, **kwargs):
    detector = _default_detector(channel)
    return collection_key(
        corpus, channel, corpus.specs, detector, False, 0, **kwargs
    )


class TestCacheKeys:
    def test_emotion_key_unchanged_from_fixture(self):
        fixture = np.load(os.path.join(FIXTURES, "golden_multitask_emotion_savee.npz"))
        corpus, channel = _savee_setup()
        key = _key(corpus, channel)
        assert key == str(fixture["key"])
        assert key == SAVEE_GOLDEN_KEY

    def test_emotion_task_key_is_the_base_key(self):
        corpus, channel = _savee_setup()
        base = _key(corpus, channel)
        assert _key(corpus, channel, task="emotion") == base

    def test_secondary_task_keys_distinct_and_readable(self):
        corpus, channel = _savee_setup()
        base = _key(corpus, channel)
        keys = {
            task: _key(corpus, channel, task=task)
            for task in ("speaker-id", "gender", "content-id")
        }
        for task, key in keys.items():
            assert key != base
            assert f"-{task}-" in key
        assert len(set(keys.values())) == len(keys)


class TestRelabelLayer:
    def _counters(self):
        m = metrics()
        return {
            name: m.counter_total(name)
            for name in ("renders", "transmits", "cache.relabel_hits")
        }

    def test_secondary_task_served_without_new_physics(self):
        corpus, channel = _savee_setup()
        cache = CollectionCache()
        emotion = collect_datasets(corpus, channel, seed=0, cache=cache)

        before = self._counters()
        speaker = collect_datasets(
            corpus, channel, seed=0, cache=cache, task="speaker-id"
        )
        after = self._counters()

        assert after["renders"] == before["renders"]
        assert after["transmits"] == before["transmits"]
        assert after["cache.relabel_hits"] == before["cache.relabel_hits"] + 1

        # Same physics, different labels: feature rows are identical,
        # labels come from the speaker roster.
        assert speaker.features.X.tobytes() == emotion.features.X.tobytes()
        assert set(speaker.features.y) <= set(corpus.speakers)
        assert set(speaker.features.y) != set(emotion.features.y)

    def test_relabel_result_matches_fresh_collection(self):
        corpus, channel = _savee_setup()
        cache = CollectionCache()
        collect_datasets(corpus, channel, seed=0, cache=cache)
        relabelled = collect_datasets(
            corpus, channel, seed=0, cache=cache, task="gender"
        )
        fresh = collect_datasets(corpus, channel, seed=0, task="gender")
        assert relabelled.features.X.tobytes() == fresh.features.X.tobytes()
        assert relabelled.features.y.tolist() == fresh.features.y.tolist()
        assert (
            relabelled.spectrograms.images.tobytes()
            == fresh.spectrograms.images.tobytes()
        )
        assert relabelled.spectrograms.y.tolist() == fresh.spectrograms.y.tolist()

    def test_relabel_works_for_continuous_protocol(self):
        corpus, channel = _handheld_setup()
        cache = CollectionCache()
        collect_datasets(corpus, channel, seed=0, cache=cache)
        before = self._counters()
        speaker = collect_datasets(
            corpus, channel, seed=0, cache=cache, task="speaker-id"
        )
        after = self._counters()
        assert after["renders"] == before["renders"]
        assert after["transmits"] == before["transmits"]
        assert set(speaker.features.y) <= set(corpus.speakers)

    def test_task_result_registered_under_task_key(self):
        corpus, channel = _savee_setup()
        cache = CollectionCache()
        collect_datasets(corpus, channel, seed=0, cache=cache)
        first = collect_datasets(
            corpus, channel, seed=0, cache=cache, task="speaker-id"
        )
        hits_before = cache.hits
        second = collect_datasets(
            corpus, channel, seed=0, cache=cache, task="speaker-id"
        )
        assert second is first
        assert cache.hits == hits_before + 1


class TestPropertyPerTaskLabels:
    """Property tests: per-task labels drawn from the task inventory."""

    @pytest.mark.parametrize("task", ["emotion", "speaker-id", "gender"])
    def test_labels_subset_of_task_inventory(self, task):
        corpus, channel = _savee_setup()
        result = collect_datasets(corpus, channel, seed=0, task=task)
        inventory = set(corpus.task_inventory(task))
        assert set(result.features.y) <= inventory
        assert set(result.spectrograms.y) <= inventory

    def test_speaker_labels_align_with_specs(self):
        corpus, channel = _savee_setup()
        emotion = collect_datasets(corpus, channel, seed=0)
        speaker = collect_datasets(corpus, channel, seed=0, task="speaker-id")
        # Per-utterance rows keep spec order, so each (emotion, speaker)
        # row pair must correspond to a spec with both attributes.
        pairs = set(zip(emotion.features.y.tolist(), speaker.features.y.tolist()))
        legal = {(s.emotion, s.speaker_id) for s in corpus.specs}
        assert pairs <= legal
