"""Integration tests: the full EmoLeak attack, end to end.

These mirror the paper's experimental protocol at reduced scale and
assert the *shape* of the published results: every attack cell beats
random guessing by a wide margin, the loudspeaker setting beats the ear
speaker, TESS beats SAVEE, and region-extraction rates meet the paper's
reported floors.
"""

import numpy as np
import pytest

from repro.attack.pipeline import EmoLeakAttack
from repro.attack.regions import RegionDetector, detection_rate
from repro.datasets import build_savee
from repro.eval.experiment import run_feature_experiment
from repro.ml.crossval import cross_val_confusion
from repro.ml.logistic import LogisticRegression
from repro.ml.preprocessing import clean_features
from repro.phone.channel import VibrationChannel
from repro.phone.recording import record_session


class TestLoudspeakerAttack:
    def test_tess_beats_chance_strongly(self, tess_features):
        result = run_feature_experiment(tess_features, "logistic", seed=0)
        assert result.accuracy > 4 * result.random_guess

    def test_extraction_rate_tabletop(self, tess_features):
        """Paper: ~90 % region extraction in the table-top setting."""
        assert tess_features.extraction_rate >= 0.85

    def test_all_features_finite_no_rows_dropped(self, tess_features):
        """Acceptance: the Table II NaN sentinels are gone.

        With the finite cv/frequency_ratio fallbacks, a default
        TESS/oneplus7t collection produces a fully finite feature matrix
        and ``clean_features`` keeps every row.
        """
        assert np.isfinite(tess_features.X).all()
        X, y, mask = clean_features(tess_features.X, tess_features.y)
        assert mask.all()
        assert X.shape == tess_features.X.shape

    def test_confusion_matrix_diagonal_dominant(self, tess_features):
        X, y, _ = clean_features(tess_features.X, tess_features.y)
        matrix, labels, acc = cross_val_confusion(
            LogisticRegression(), X, y, n_splits=5
        )
        diag = np.diag(matrix).sum()
        assert diag > 0.5 * matrix.sum()


class TestEarSpeakerAttack:
    @pytest.fixture(scope="class")
    def ear_features(self, small_tess):
        channel = VibrationChannel(
            "oneplus7t", mode="ear_speaker", placement="handheld"
        )
        return EmoLeakAttack(channel, seed=11).collect_features(small_tess)

    def test_beats_chance(self, ear_features):
        result = run_feature_experiment(ear_features, "random_forest", seed=0,
                                        fast=True)
        assert result.accuracy > 2 * result.random_guess

    def test_extraction_floor(self, ear_features):
        """Paper: >=45 % of regions recoverable from the ear speaker."""
        assert ear_features.extraction_rate >= 0.45

    def test_weaker_than_loudspeaker(self, ear_features, tess_features):
        ear = run_feature_experiment(ear_features, "logistic", seed=0)
        loud = run_feature_experiment(tess_features, "logistic", seed=0)
        assert loud.accuracy > ear.accuracy


class TestCorpusOrdering:
    def test_tess_beats_savee(self, tess_features, loud_channel):
        """Paper: TESS (2 clean speakers) >> SAVEE (4 varied speakers)."""
        savee = build_savee(seed=4).subsample(per_class=10, seed=0)
        savee_features = EmoLeakAttack(loud_channel, seed=5).collect_features(savee)
        tess_result = run_feature_experiment(tess_features, "logistic", seed=0)
        savee_result = run_feature_experiment(savee_features, "logistic", seed=0)
        assert tess_result.accuracy > savee_result.accuracy


class TestSessionProtocol:
    def test_handheld_detection_rate(self, small_tess):
        channel = VibrationChannel(
            "oneplus7t", mode="ear_speaker", placement="handheld"
        )
        specs = small_tess.specs[:30]
        session = record_session(small_tess, channel, specs=specs, seed=2)
        detector = RegionDetector.for_setting("handheld")
        regions = detector.detect(session.trace, session.fs)
        truth = [(e.start_s, e.end_s) for e in session.events]
        assert detection_rate(regions, truth) >= 0.45

    def test_tabletop_detection_rate(self, small_tess, loud_channel):
        specs = small_tess.specs[:30]
        session = record_session(small_tess, loud_channel, specs=specs, seed=2)
        detector = RegionDetector.for_setting("table_top")
        regions = detector.detect(session.trace, session.fs)
        truth = [(e.start_s, e.end_s) for e in session.events]
        assert detection_rate(regions, truth) >= 0.85


class TestSamplingRateCap:
    def test_200hz_still_beats_chance(self, small_tess):
        """Section VI-A: the Android cap degrades but does not kill the attack."""
        capped = VibrationChannel("oneplus7t", sample_rate=200.0)
        features = EmoLeakAttack(capped, seed=7).collect_features(small_tess)
        result = run_feature_experiment(features, "logistic", seed=0)
        assert result.accuracy > 4 * result.random_guess
