"""Robustness and failure-injection tests.

The pipeline must degrade gracefully — empty datasets, silent audio,
clipped channels, corrupted features — rather than crash or fabricate
results.
"""

import numpy as np
import pytest

from repro.attack.pipeline import collect_feature_dataset, collect_spectrogram_dataset
from repro.attack.regions import RegionDetector
from repro.datasets import build_tess
from repro.datasets.base import Corpus, UtteranceSpec
from repro.eval.experiment import run_feature_experiment
from repro.ml.preprocessing import clean_features
from repro.phone.channel import VibrationChannel


def _silent_corpus():
    """A corpus whose 'speech' renders to (near) silence."""
    base = build_tess(words_per_emotion=2, seed=5)

    class SilentCorpus(Corpus):
        def render(self, spec):
            return np.zeros(4000)

    return SilentCorpus(
        name="silent",
        emotions=base.emotions,
        speakers=dict(base.speakers),
        specs=list(base.specs[:14]),
        audio_fs=base.audio_fs,
    )


class TestSilentInput:
    def test_no_regions_from_silence(self):
        corpus = _silent_corpus()
        channel = VibrationChannel("oneplus7t")
        dataset = collect_feature_dataset(corpus, channel, seed=0)
        # The detector's signal-presence gate should reject noise floors.
        assert dataset.X.shape[0] <= 2
        assert dataset.extraction_rate <= 0.2

    def test_empty_dataset_shape(self):
        corpus = _silent_corpus()
        channel = VibrationChannel("oneplus7t")
        dataset = collect_spectrogram_dataset(corpus, channel, seed=0)
        assert dataset.images.ndim == 4


class TestCorruptedFeatures:
    def test_nan_rows_cleaned_before_experiment(self, tess_features):
        X = tess_features.X.copy()
        X[::5, 3] = np.nan
        from repro.attack.pipeline import FeatureDataset

        corrupted = FeatureDataset(X=X, y=tess_features.y.copy())
        result = run_feature_experiment(corrupted, "logistic", seed=0)
        assert result.accuracy > 0.3  # still works on the clean subset

    def test_all_rows_nan_raises(self):
        from repro.attack.pipeline import FeatureDataset

        bad = FeatureDataset(
            X=np.full((40, 24), np.nan), y=np.array(["a", "b"] * 20)
        )
        with pytest.raises(ValueError):
            run_feature_experiment(bad, "logistic")


class TestDetectorEdgeCases:
    def test_constant_trace(self):
        detector = RegionDetector()
        assert detector.detect(np.full(2000, 9.81), 420.0) == []

    def test_very_short_trace(self):
        detector = RegionDetector()
        regions = detector.detect(np.random.default_rng(0).normal(size=20), 420.0)
        assert isinstance(regions, list)

    def test_single_sample(self):
        detector = RegionDetector()
        assert detector.detect(np.array([9.81]), 420.0) == []


class TestChannelExtremes:
    def test_clipping_channel_still_usable(self):
        """A channel driven into full-scale clipping must stay finite."""
        channel = VibrationChannel("oneplus7t")
        huge = 50.0 * np.sin(2 * np.pi * 500 * np.arange(8000) / 8000.0)
        out = channel.transmit(huge, 8000.0)
        assert np.all(np.isfinite(out))
        assert np.max(np.abs(out)) <= channel._accel.full_scale + 1e-9

    def test_zero_length_audio(self):
        channel = VibrationChannel("oneplus7t")
        out = channel.transmit(np.zeros(0), 8000.0)
        assert out.size <= 1

    def test_dc_only_audio(self):
        channel = VibrationChannel("oneplus7t")
        out = channel.transmit(np.ones(8000) * 0.5, 8000.0)
        assert np.all(np.isfinite(out))


class TestCorpusEdgeCases:
    def test_single_emotion_corpus_features(self):
        corpus = build_tess(words_per_emotion=3, seed=6).filter_emotions(["angry"])
        channel = VibrationChannel("oneplus7t")
        dataset = collect_feature_dataset(corpus, channel, seed=0)
        assert set(dataset.y) <= {"angry"}

    def test_render_with_distinct_voices_differs(self):
        corpus = build_tess(words_per_emotion=1, seed=7)
        spec = corpus.specs[0]
        other_speaker = [s for s in corpus.specs
                        if s.speaker_id != spec.speaker_id][0]
        same_seed = UtteranceSpec(
            utterance_id="x",
            speaker_id=other_speaker.speaker_id,
            emotion=spec.emotion,
            seed=spec.seed,
            mean_syllables=spec.mean_syllables,
            carrier=spec.carrier,
        )
        a = corpus.render(spec)
        b = corpus.render(same_seed)
        assert not np.allclose(a[: min(a.size, b.size)], b[: min(a.size, b.size)])


class TestCleanFeaturesContract:
    def test_mask_alignment(self):
        X = np.ones((6, 3))
        X[2, 1] = np.inf
        y = np.arange(6)
        Xc, yc, mask = clean_features(X, y)
        assert Xc.shape[0] == 5
        assert 2 not in yc
        assert mask.sum() == 5
