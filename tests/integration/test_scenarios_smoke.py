"""Smoke test: every canonical scenario runs end to end.

Table-driven pass over every scenario cell (the paper tables plus the
sibling-attack heads) with small subsamples — guards the scenario
registry, both collection modes, both speaker/placement pairings and
the per-task label plane against regressions in any substrate.
"""

import pytest

from repro.attack.pipeline import EmoLeakAttack
from repro.attack.scenarios import SCENARIOS
from repro.datasets import build_corpus
from repro.eval.experiment import run_feature_experiment


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_smoke(name):
    scenario = SCENARIOS[name]
    corpus = build_corpus(scenario.dataset).subsample(
        per_class=6, seed=1, stratify_speakers=(scenario.task != "gender")
    )
    channel = scenario.channel(seed=2)
    attack = EmoLeakAttack(channel, seed=2, task=scenario.task)
    features = attack.collect_features(corpus)

    # Collection produced usable data labelled from the task inventory.
    assert features.X.shape[1] == 24
    assert features.X.shape[0] >= 0.4 * len(corpus)
    assert set(features.y) <= set(corpus.task_inventory(scenario.task))

    # A classifier trains and predicts over the full class set.
    result = run_feature_experiment(features, "random_forest", seed=0, fast=True)
    assert result.n_classes == len(set(features.y))
    assert 0.0 <= result.accuracy <= 1.0
    assert result.confusion.sum() == result.n_test
