"""Concurrency guarantees: no lost increments, no double publishes."""

import threading

import pytest

from repro.attack.engine import collect_datasets, global_stats, reset_global_stats
from repro.obs import MetricsRegistry, Tracer

N_THREADS = 8
N_OPS = 2500


class TestRegistryUnderContention:
    def test_no_lost_counter_increments(self):
        reg = MetricsRegistry()
        barrier = threading.Barrier(N_THREADS)

        def hammer(worker: int) -> None:
            barrier.wait()
            for _ in range(N_OPS):
                reg.count("hits")
                reg.count("hits", 1, worker=worker)
                reg.observe("stage", 0.001)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("hits") == N_THREADS * N_OPS
        assert reg.counter_total("hits") == 2 * N_THREADS * N_OPS
        stat = reg.timer("stage")
        assert stat.count == N_THREADS * N_OPS
        assert stat.total_s == pytest.approx(N_THREADS * N_OPS * 0.001)

    def test_concurrent_merges_lose_nothing(self):
        target = MetricsRegistry()
        sources = []
        for i in range(N_THREADS):
            reg = MetricsRegistry()
            reg.count("hits", N_OPS)
            reg.observe("stage", 0.5, worker=i)
            sources.append(reg)
        threads = [
            threading.Thread(target=target.merge, args=(reg,)) for reg in sources
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert target.counter_value("hits") == N_THREADS * N_OPS
        assert target.timer_total("stage").count == N_THREADS

    def test_tracer_spans_from_many_threads(self):
        tracer = Tracer(registry=MetricsRegistry())
        barrier = threading.Barrier(N_THREADS)

        def work() -> None:
            barrier.wait()
            for _ in range(50):
                with tracer.span("unit"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every span is a root (each thread has its own empty stack) and
        # none may be lost.
        assert len(tracer.roots()) == N_THREADS * 50
        assert tracer.registry.timer("unit", status="ok").count == N_THREADS * 50


class TestPublishOnce:
    """Regression guards for ``_publish``: one pass, one publication."""

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_pass_publishes_worker_stats_exactly_once(
        self, tiny_tess, loud_channel, executor
    ):
        specs = tiny_tess.specs[:8]
        reset_global_stats()
        result = collect_datasets(
            tiny_tess, loud_channel, specs=specs, seed=3,
            n_jobs=2 if executor != "serial" else 1, executor=executor,
        )
        stats = global_stats()
        # Exactly the pass's own counts — a double publish would double them.
        assert stats.transmits == len(specs)
        assert stats.renders == len(specs)
        assert stats.n_played == len(specs)
        assert stats.regions_used == result.stats.regions_used
        # Stage time reached the registry exactly once too (workers ship
        # their spans back as one aggregate for the process pool).
        assert stats.render_s == pytest.approx(result.stats.render_s)
        assert stats.transmit_s == pytest.approx(result.stats.transmit_s)
