"""Unit tests for the labelled metrics registry."""

import pickle

import pytest

from repro.obs import MetricsRegistry, TimerStat, metric_key


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.count("hits")
        reg.count("hits", 4)
        assert reg.counter_value("hits") == 5

    def test_counter_labels_are_separate_series(self):
        reg = MetricsRegistry()
        reg.count("hits", 1, scenario="a")
        reg.count("hits", 2, scenario="b")
        assert reg.counter_value("hits", scenario="a") == 1
        assert reg.counter_value("hits", scenario="b") == 2
        assert reg.counter_value("hits") == 0  # unlabelled series untouched
        assert reg.counter_total("hits") == 3

    def test_gauge_keeps_high_water_mark(self):
        reg = MetricsRegistry()
        reg.gauge("pool", 4)
        reg.gauge("pool", 2)
        assert reg.gauge_value("pool") == 4
        assert reg.gauge_max("pool") == 4
        assert reg.gauge_value("missing") is None

    def test_timer_aggregates(self):
        reg = MetricsRegistry()
        reg.observe("stage", 0.5)
        reg.observe("stage", 1.5)
        stat = reg.timer("stage")
        assert stat.count == 2
        assert stat.total_s == pytest.approx(2.0)
        assert stat.max_s == pytest.approx(1.5)
        assert stat.mean_s == pytest.approx(1.0)

    def test_timer_total_sums_across_labels(self):
        reg = MetricsRegistry()
        reg.observe("stage", 1.0, status="ok")
        reg.observe("stage", 2.0, status="error")
        merged = reg.timer_total("stage")
        assert merged.count == 2
        assert merged.total_s == pytest.approx(3.0)

    def test_metric_key_canonicalises_label_order(self):
        assert metric_key("m", {"a": 1, "b": 2}) == metric_key("m", {"b": 2, "a": 1})


class TestMerge:
    def test_merge_returns_self_and_accumulates(self):
        a = MetricsRegistry()
        a.count("hits", 1)
        b = MetricsRegistry()
        b.count("hits", 2)
        b.observe("stage", 1.0)
        b.gauge("pool", 3)
        assert a.merge(b) is a
        assert a.counter_value("hits") == 3
        assert a.timer("stage").count == 1
        assert a.gauge_value("pool") == 3

    def test_merge_identity(self):
        a = MetricsRegistry()
        a.count("hits", 7, scenario="x")
        a.observe("stage", 0.25)
        before = a.snapshot()
        a.merge(MetricsRegistry())
        assert a.snapshot() == before

    def test_copy_is_independent(self):
        a = MetricsRegistry()
        a.count("hits", 1)
        clone = a.copy()
        clone.count("hits", 10)
        assert a.counter_value("hits") == 1
        assert clone.counter_value("hits") == 11

    def test_clear_and_len(self):
        reg = MetricsRegistry()
        assert reg.is_empty()
        reg.count("a")
        reg.gauge("b", 1)
        reg.observe("c", 0.1)
        assert len(reg) == 3
        reg.clear()
        assert reg.is_empty()


class TestPickling:
    def test_roundtrip_preserves_metrics(self):
        reg = MetricsRegistry()
        reg.count("hits", 3, scenario="x")
        reg.observe("stage", 0.5)
        reg.gauge("pool", 2)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.snapshot() == reg.snapshot()
        # The rebuilt lock still works.
        clone.count("hits", 1, scenario="x")
        assert clone.counter_value("hits", scenario="x") == 4


class TestRendering:
    def test_render_table_lists_all_kinds(self):
        reg = MetricsRegistry()
        reg.count("transmits", 5)
        reg.observe("render", 0.25, status="ok")
        reg.gauge("engine.n_jobs", 4, executor="thread")
        table = reg.render_table()
        assert "transmits" in table
        assert "render{status=ok}" in table
        assert "engine.n_jobs{executor=thread}" in table
        assert "timer" in table and "counter" in table and "gauge" in table

    def test_render_table_empty(self):
        assert "no metrics" in MetricsRegistry().render_table()

    def test_timerstat_copy(self):
        stat = TimerStat(1.0, 2, 0.75)
        clone = stat.copy()
        clone.observe(5.0)
        assert stat.count == 2 and clone.count == 3
