"""Unit tests for the span tracer."""

import json
import time

import pytest

from repro.obs import MetricsRegistry, Tracer


def make_tracer():
    reg = MetricsRegistry()
    return Tracer(registry=reg), reg


class TestSpans:
    def test_nesting_and_durations(self):
        tracer, _ = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                time.sleep(0.002)
        roots = tracer.roots()
        assert [s.name for s in roots] == ["outer"]
        assert roots[0].children[0].name == "inner"
        assert outer.duration_s >= inner.duration_s > 0
        assert inner.parent_id == outer.span_id

    def test_exception_still_records_span(self):
        tracer, reg = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                time.sleep(0.001)
                raise RuntimeError("boom")
        (span,) = tracer.find("doomed")
        assert span.status == "error"
        assert "RuntimeError: boom" in span.error
        assert span.duration_s > 0
        stat = reg.timer("doomed", status="error")
        assert stat.count == 1 and stat.total_s > 0

    def test_exception_unwinds_stack(self):
        tracer, _ = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("x")
        assert tracer.current() is None
        (outer,) = tracer.find("outer")
        assert outer.status == "error"
        assert outer.children[0].status == "error"

    def test_registry_observation_uses_labels(self):
        tracer, reg = make_tracer()
        with tracer.span("stage", scenario="a"):
            pass
        assert reg.timer("stage", scenario="a", status="ok").count == 1

    def test_metric_labels_override(self):
        tracer, reg = make_tracer()
        with tracer.span("fold", fold=3, metric_labels={}):
            pass
        (span,) = tracer.find("fold")
        assert span.labels == {"fold": 3}  # trace keeps the label...
        assert reg.timer("fold", status="ok").count == 1  # ...metrics drop it

    def test_record_attaches_under_open_span(self):
        tracer, reg = make_tracer()
        with tracer.span("train"):
            tracer.record("train_epoch", 0.01, epoch=0, metric_labels={})
        (train,) = tracer.find("train")
        assert [c.name for c in train.children] == ["train_epoch"]
        assert reg.timer("train_epoch", status="ok").total_s == pytest.approx(0.01)

    def test_elapsed_while_open(self):
        tracer, _ = make_tracer()
        with tracer.span("open") as span:
            time.sleep(0.002)
            live = span.elapsed()
            assert live > 0
        assert span.elapsed() == span.duration_s >= live


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        tracer, _ = make_tracer()
        with tracer.span("outer", scenario="x"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        n_spans = tracer.export_jsonl(path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert n_spans == len(records) == 2
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["labels"] == {"scenario": "x"}
        assert all(r["status"] == "ok" for r in records)

    def test_export_empty_trace(self, tmp_path):
        tracer, _ = make_tracer()
        path = tmp_path / "empty.jsonl"
        assert tracer.export_jsonl(path) == 0
        assert path.read_text() == ""

    def test_render_tree_groups_siblings(self):
        tracer, _ = make_tracer()
        with tracer.span("collect"):
            for _ in range(3):
                with tracer.span("render"):
                    pass
        tree = tracer.render_tree()
        assert "collect" in tree
        assert "render x3" in tree

    def test_render_tree_marks_errors(self):
        tracer, _ = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("x")
        assert "[1 error]" in tracer.render_tree()

    def test_clear_drops_finished_spans(self):
        tracer, _ = make_tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.roots() == []
        assert tracer.render_tree() == "(no spans recorded)"
