"""Regression tests for the bounded envelope-ramp cache.

The synthesizer memoizes ``np.linspace``-equivalent ramps keyed by
``(start, stop, n, power)``. The cache must (a) return byte-identical
values to fresh linspace computations, (b) stay bounded at
``_RAMP_CACHE_MAX`` entries under non-repeating workloads, and (c) evict
least-recently-used entries first so repeating syllable lengths stay
warm.
"""

import numpy as np
import pytest

from repro.speech import synthesizer as synth_mod
from repro.speech.synthesizer import _cached_ramp


@pytest.fixture(autouse=True)
def _fresh_cache():
    saved = dict(synth_mod._RAMP_CACHE)
    synth_mod._RAMP_CACHE.clear()
    yield
    synth_mod._RAMP_CACHE.clear()
    synth_mod._RAMP_CACHE.update(saved)


def _reference(start, stop, n, power=None):
    ramp = np.linspace(start, stop, n)
    if power is not None:
        ramp = ramp**power
    return ramp


@pytest.mark.parametrize(
    "start,stop,n,power",
    [
        (0.0, 1.0, 64, None),
        (1.0, 0.0, 64, None),
        (0.3, 0.9, 257, None),
        (0.0, 1.0, 128, 2.0),
        (1.0, 0.2, 33, 0.7),
        (-0.5, 0.5, 2, None),
        (0.4, 0.4, 1, None),
    ],
)
def test_cached_ramp_byte_identical_to_linspace(start, stop, n, power):
    ramp = _cached_ramp(start, stop, n, power)
    expected = _reference(start, stop, n, power)
    assert ramp.dtype == expected.dtype
    assert ramp.tobytes() == expected.tobytes()
    # Hit path returns the same immutable array.
    again = _cached_ramp(start, stop, n, power)
    assert again is ramp
    assert not ramp.flags.writeable


def test_cache_is_bounded(monkeypatch):
    monkeypatch.setattr(synth_mod, "_RAMP_CACHE_MAX", 16)
    for n in range(2, 100):
        _cached_ramp(0.0, 1.0, n)
    assert len(synth_mod._RAMP_CACHE) <= 16


def test_lru_eviction_keeps_recently_used(monkeypatch):
    monkeypatch.setattr(synth_mod, "_RAMP_CACHE_MAX", 4)
    for n in (2, 3, 4, 5):
        _cached_ramp(0.0, 1.0, n)
    # Touch the oldest entry, then insert one more: the touched entry
    # must survive and the least-recently-used one (n=3) must go.
    _cached_ramp(0.0, 1.0, 2)
    _cached_ramp(0.0, 1.0, 6)
    keys = {key[2] for key in synth_mod._RAMP_CACHE}
    assert 2 in keys
    assert 3 not in keys
    assert len(synth_mod._RAMP_CACHE) == 4


def test_evicted_ramp_rebuilds_byte_identical(monkeypatch):
    monkeypatch.setattr(synth_mod, "_RAMP_CACHE_MAX", 2)
    first = _cached_ramp(0.2, 0.8, 97, 1.5).copy()
    # Force eviction of the first entry, then rebuild it.
    for n in (10, 11, 12):
        _cached_ramp(0.0, 1.0, n)
    assert (0.2, 0.8, 97, 1.5) not in synth_mod._RAMP_CACHE
    rebuilt = _cached_ramp(0.2, 0.8, 97, 1.5)
    assert rebuilt.tobytes() == first.tobytes()


def test_render_unchanged_by_cache_churn(monkeypatch):
    """Synthesis output must not depend on cache state (golden stability)."""
    from repro.datasets import build_tess

    corpus = build_tess(words_per_emotion=1)
    spec = corpus.specs[0]
    baseline = corpus.render(spec)
    # Shrink the cache and churn it so renders run with constant
    # eviction pressure, then re-render.
    monkeypatch.setattr(synth_mod, "_RAMP_CACHE_MAX", 1)
    synth_mod._RAMP_CACHE.clear()
    for n in range(2, 50):
        _cached_ramp(0.0, 1.0, n)
    again = corpus.render(spec)
    assert again.tobytes() == baseline.tobytes()
