"""Tests for repro.speech.synthesizer."""

import numpy as np
import pytest

from repro.speech.phonemes import plan_utterance
from repro.speech.prosody import emotion_profile
from repro.speech.synthesizer import SpeakerVoice, Synthesizer


@pytest.fixture()
def synth():
    return Synthesizer(fs=8000.0)


@pytest.fixture()
def voice():
    return SpeakerVoice()


class TestSpeakerVoice:
    def test_random_female_higher_f0(self):
        rng = np.random.default_rng(0)
        females = [SpeakerVoice.random(rng, female=True).base_f0_hz for _ in range(20)]
        males = [SpeakerVoice.random(rng, female=False).base_f0_hz for _ in range(20)]
        assert np.mean(females) > 1.4 * np.mean(males)

    def test_random_female_shorter_tract(self):
        rng = np.random.default_rng(1)
        voice = SpeakerVoice.random(rng, female=True)
        assert voice.tract_scale > 1.05

    def test_deterministic(self):
        a = SpeakerVoice.random(np.random.default_rng(7))
        b = SpeakerVoice.random(np.random.default_rng(7))
        assert a == b


class TestSynthesizer:
    def test_rejects_low_rate(self):
        with pytest.raises(ValueError):
            Synthesizer(fs=1000.0)

    def test_render_in_range(self, synth, voice):
        wave = synth.render(voice, emotion_profile("neutral"), np.random.default_rng(0))
        assert np.all(np.abs(wave) <= 1.0)
        assert wave.size > 800

    def test_render_deterministic(self, synth, voice):
        a = synth.render(voice, emotion_profile("happy"), np.random.default_rng(3))
        b = synth.render(voice, emotion_profile("happy"), np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_angry_louder_than_sad(self, synth, voice):
        angry = synth.render(voice, emotion_profile("angry"), np.random.default_rng(1))
        sad = synth.render(voice, emotion_profile("sad"), np.random.default_rng(1))
        assert np.sqrt(np.mean(angry**2)) > 2 * np.sqrt(np.mean(sad**2))

    def test_sad_slower_than_angry(self, synth, voice):
        plan = plan_utterance(np.random.default_rng(2), n_syllables=5)
        angry = synth.render(
            voice, emotion_profile("angry"), np.random.default_rng(1), plan
        )
        sad = synth.render(voice, emotion_profile("sad"), np.random.default_rng(1), plan)
        assert sad.size > 1.3 * angry.size

    def test_high_f0_emotion_raises_pitch(self, synth, voice):
        def dominant_low_freq(wave):
            spectrum = np.abs(np.fft.rfft(wave * np.hanning(wave.size)))
            freqs = np.fft.rfftfreq(wave.size, 1 / 8000.0)
            low = freqs < 600
            return freqs[low][np.argmax(spectrum[low])]

        plan = plan_utterance(np.random.default_rng(5), n_syllables=4)
        surprise = synth.render(
            voice, emotion_profile("surprise"), np.random.default_rng(4), plan
        )
        sad = synth.render(voice, emotion_profile("sad"), np.random.default_rng(4), plan)
        assert dominant_low_freq(surprise) > dominant_low_freq(sad)

    def test_render_uses_supplied_plan_length(self, synth, voice):
        plan = plan_utterance(np.random.default_rng(0), n_syllables=3)
        wave = synth.render(
            voice, emotion_profile("neutral"), np.random.default_rng(0), plan
        )
        expected = plan.duration_s * 8000
        assert wave.size == pytest.approx(expected, rel=0.4)
