"""Tests for the periodic-source music model behind the content-ID attack."""

import numpy as np
import pytest

from repro.speech.music import SONGS, MusicSynthesizer, SongSpec, song_names


class TestSongSpec:
    def test_catalogue_names_are_keys(self):
        assert all(name == song.name for name, song in SONGS.items())
        assert song_names() == tuple(sorted(SONGS))

    def test_catalogue_fingerprints_distinct(self):
        tempos = [song.tempo_bpm for song in SONGS.values()]
        assert len(set(tempos)) == len(tempos)

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"tempo_bpm": 0.0}, "tempo_bpm"),
            ({"root_hz": -1.0}, "root_hz"),
            ({"brightness": 1.0}, "brightness"),
            ({"pattern": (1.0, 0.0)}, "pattern"),
        ],
    )
    def test_validation(self, kwargs, match):
        base = dict(name="x", tempo_bpm=120.0, root_hz=110.0)
        base.update(kwargs)
        with pytest.raises(ValueError, match=match):
            SongSpec(**base)


class TestMusicSynthesizer:
    def test_rejects_low_sampling_rate(self):
        with pytest.raises(ValueError):
            MusicSynthesizer(fs=500.0)

    def test_render_shape_and_range(self):
        synth = MusicSynthesizer(fs=8000.0)
        wave = synth.render(
            SONGS["pop-100"], np.random.default_rng(0), duration_s=1.6
        )
        assert wave.shape == (int(round(1.6 * 8000.0)),)
        assert np.all(np.abs(wave) <= 1.0)
        assert np.sqrt(np.mean(wave**2)) > 0.01

    def test_render_deterministic_given_seed(self):
        synth = MusicSynthesizer(fs=8000.0)
        a = synth.render(SONGS["dnb-150"], np.random.default_rng(42))
        b = synth.render(SONGS["dnb-150"], np.random.default_rng(42))
        assert a.tobytes() == b.tobytes()

    def test_clips_of_one_song_vary(self):
        synth = MusicSynthesizer(fs=8000.0)
        a = synth.render(SONGS["rock-126"], np.random.default_rng(1))
        b = synth.render(SONGS["rock-126"], np.random.default_rng(2))
        assert a.tobytes() != b.tobytes()

    def test_rejects_nonpositive_duration(self):
        synth = MusicSynthesizer(fs=8000.0)
        with pytest.raises(ValueError):
            synth.render(SONGS["pop-100"], np.random.default_rng(0), duration_s=0.0)

    def test_render_batch_matches_per_clip(self):
        synth = MusicSynthesizer(fs=8000.0)
        names = ["ballad-62", "dance-128", "punk-168"]
        songs = [SONGS[n] for n in names]
        batch = synth.render_batch(
            songs, [np.random.default_rng(seed) for seed in (5, 6, 7)]
        )
        for wave, song, seed in zip(batch, songs, (5, 6, 7)):
            reference = synth.render(song, np.random.default_rng(seed))
            assert wave.tobytes() == reference.tobytes()

    def test_tempo_fingerprint_survives_in_envelope(self):
        # The beat-locked envelope should put the strongest low-frequency
        # energy periodicity at (or near) the song's beat rate.
        fs = 8000.0
        synth = MusicSynthesizer(fs=fs)
        song = SONGS["dance-128"]
        wave = synth.render(
            song, np.random.default_rng(0), duration_s=4.0, start_beat=0.0
        )
        envelope = np.abs(wave)
        envelope -= envelope.mean()
        spectrum = np.abs(np.fft.rfft(envelope))
        freqs = np.fft.rfftfreq(len(envelope), d=1.0 / fs)
        band = (freqs > 0.5) & (freqs < 6.0)
        peak_hz = freqs[band][np.argmax(spectrum[band])]
        beat_hz = song.tempo_bpm / 60.0
        # The peak may land on the beat rate or its subdivision harmonic.
        assert min(
            abs(peak_hz - k * beat_hz) for k in (1, 2)
        ) < 0.25
