"""Tests for repro.speech.phonemes."""

import numpy as np
import pytest

from repro.speech.phonemes import Syllable, UtterancePlan, plan_utterance


class TestUtterancePlan:
    def test_pause_count_validation(self):
        syllables = [Syllable("a", 0.1), Syllable("e", 0.1)]
        with pytest.raises(ValueError):
            UtterancePlan(syllables=syllables, pauses_s=[0.05, 0.05])

    def test_duration(self):
        plan = UtterancePlan(
            syllables=[Syllable("a", 0.2, onset_noise_s=0.05)], pauses_s=[]
        )
        assert plan.duration_s == pytest.approx(0.25)

    def test_empty_plan(self):
        plan = UtterancePlan(syllables=[], pauses_s=[])
        assert plan.duration_s == 0.0


class TestPlanUtterance:
    def test_deterministic(self):
        a = plan_utterance(np.random.default_rng(5))
        b = plan_utterance(np.random.default_rng(5))
        assert a == b

    def test_minimum_two_syllables(self):
        for seed in range(30):
            plan = plan_utterance(np.random.default_rng(seed), mean_syllables=1.0)
            assert len(plan.syllables) >= 2

    def test_explicit_count(self):
        plan = plan_utterance(np.random.default_rng(0), n_syllables=5)
        assert len(plan.syllables) == 5
        assert len(plan.pauses_s) == 4

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            plan_utterance(np.random.default_rng(0), n_syllables=0)

    def test_carrier_structure_fixed(self):
        """Carrier plans share everything except the final target word."""
        a = plan_utterance(np.random.default_rng(1), carrier=True)
        b = plan_utterance(np.random.default_rng(2), carrier=True)
        assert len(a.syllables) == len(b.syllables) == 4
        assert a.syllables[:-1] == b.syllables[:-1]
        assert a.pauses_s == b.pauses_s

    def test_carrier_target_word_varies(self):
        plans = [
            plan_utterance(np.random.default_rng(seed), carrier=True)
            for seed in range(20)
        ]
        vowels = {p.syllables[-1].vowel for p in plans}
        assert len(vowels) > 1

    def test_carrier_minimum_syllables(self):
        with pytest.raises(ValueError):
            plan_utterance(np.random.default_rng(0), n_syllables=1, carrier=True)

    def test_free_plans_vary(self):
        plans = [plan_utterance(np.random.default_rng(s)) for s in range(10)]
        assert len({len(p.syllables) for p in plans}) > 1
