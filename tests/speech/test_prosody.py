"""Tests for repro.speech.prosody."""

import numpy as np
import pytest

from repro.speech.prosody import (
    CREMAD_EMOTIONS,
    EMOTIONS,
    ProsodyProfile,
    emotion_profile,
    perturbed_profile,
)


class TestInventories:
    def test_seven_emotions(self):
        assert len(EMOTIONS) == 7

    def test_cremad_six_emotions(self):
        assert len(CREMAD_EMOTIONS) == 6
        assert "surprise" not in CREMAD_EMOTIONS

    def test_cremad_subset(self):
        assert set(CREMAD_EMOTIONS) <= set(EMOTIONS)


class TestEmotionProfile:
    @pytest.mark.parametrize("emotion", EMOTIONS)
    def test_all_emotions_defined(self, emotion):
        assert isinstance(emotion_profile(emotion), ProsodyProfile)

    def test_aliases(self):
        assert emotion_profile("pleasant_surprise") == emotion_profile("surprise")
        assert emotion_profile("anger") == emotion_profile("angry")
        assert emotion_profile("sadness") == emotion_profile("sad")

    def test_case_insensitive(self):
        assert emotion_profile("ANGRY") == emotion_profile("angry")

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown emotion"):
            emotion_profile("melancholy")

    def test_neutral_is_reference(self):
        neutral = emotion_profile("neutral")
        assert neutral.f0_scale == 1.0
        assert neutral.energy_db == 0.0
        assert neutral.rate_scale == 1.0

    def test_angry_louder_faster_higher(self):
        angry = emotion_profile("angry")
        assert angry.energy_db > 3.0
        assert angry.rate_scale > 1.0
        assert angry.f0_scale > 1.1

    def test_sad_quieter_slower_lower(self):
        sad = emotion_profile("sad")
        assert sad.energy_db < -3.0
        assert sad.rate_scale < 1.0
        assert sad.f0_scale < 1.0

    def test_fear_breathy_and_jittery(self):
        fear = emotion_profile("fear")
        neutral = emotion_profile("neutral")
        assert fear.breathiness > neutral.breathiness
        assert fear.jitter > neutral.jitter

    def test_angry_brighter_than_sad(self):
        assert (
            emotion_profile("angry").tilt_db_per_octave
            > emotion_profile("sad").tilt_db_per_octave
        )


class TestPerturbedProfile:
    def test_deterministic_given_seed(self):
        base = emotion_profile("happy")
        a = perturbed_profile(base, np.random.default_rng(9))
        b = perturbed_profile(base, np.random.default_rng(9))
        assert a == b

    def test_zero_expressiveness_collapses_to_neutral(self):
        base = emotion_profile("angry")
        out = perturbed_profile(
            base, np.random.default_rng(0), expressiveness=0.0, variability=0.0
        )
        neutral = emotion_profile("neutral")
        assert out.f0_scale == pytest.approx(neutral.f0_scale)
        assert out.energy_db == pytest.approx(neutral.energy_db)

    def test_full_expressiveness_no_noise_is_canonical(self):
        base = emotion_profile("angry")
        out = perturbed_profile(
            base, np.random.default_rng(0), expressiveness=1.0, variability=0.0
        )
        assert out.f0_scale == pytest.approx(base.f0_scale)
        assert out.rate_scale == pytest.approx(base.rate_scale)

    def test_variability_spreads_realisations(self):
        base = emotion_profile("happy")
        rng = np.random.default_rng(3)
        values = [
            perturbed_profile(base, rng, variability=0.3).f0_scale for _ in range(40)
        ]
        assert np.std(values) > 0.02

    def test_breathiness_clipped(self):
        base = emotion_profile("fear")
        rng = np.random.default_rng(5)
        for _ in range(50):
            out = perturbed_profile(base, rng, variability=1.0)
            assert 0.0 <= out.breathiness <= 0.8

    def test_positive_parameters_stay_positive(self):
        base = emotion_profile("sad")
        rng = np.random.default_rng(8)
        for _ in range(50):
            out = perturbed_profile(base, rng, variability=0.8)
            assert out.f0_scale > 0
            assert out.rate_scale > 0
            assert out.jitter > 0
