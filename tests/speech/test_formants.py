"""Tests for repro.speech.formants."""

import numpy as np
import pytest

from repro.speech.formants import VOWELS, formant_filter, vowel_formants


class TestVowelFormants:
    @pytest.mark.parametrize("vowel", sorted(VOWELS))
    def test_all_vowels(self, vowel):
        f1, f2, f3 = vowel_formants(vowel)
        assert 0 < f1 < f2 < f3

    def test_tract_scale(self):
        male = vowel_formants("a", 1.0)
        female = vowel_formants("a", 1.16)
        assert all(f > m for f, m in zip(female, male))

    def test_unknown_vowel(self):
        with pytest.raises(ValueError, match="unknown vowel"):
            vowel_formants("x")


class TestFormantFilter:
    def test_output_shape_and_normalised(self):
        rng = np.random.default_rng(0)
        out = formant_filter(rng.normal(size=4000), vowel_formants("a"), 8000.0)
        assert out.shape == (4000,)
        assert np.max(np.abs(out)) == pytest.approx(1.0)

    def test_resonance_emphasis(self):
        """White noise through /i/ should peak near F2 more than near 1 kHz gap."""
        rng = np.random.default_rng(1)
        fs = 8000.0
        out = formant_filter(rng.normal(size=16000), vowel_formants("i"), fs)
        spectrum = np.abs(np.fft.rfft(out)) ** 2
        freqs = np.fft.rfftfreq(out.size, 1 / fs)
        def band(lo, hi):
            return spectrum[(freqs >= lo) & (freqs < hi)].mean()
        # /i/: F1=270, F2=2290 -> the 1-1.5 kHz valley is weaker than F2 region.
        assert band(2100, 2500) > band(1000, 1500)

    def test_zero_input(self):
        out = formant_filter(np.zeros(100), vowel_formants("a"), 8000.0)
        assert np.allclose(out, 0.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            formant_filter(np.zeros((2, 2)), vowel_formants("a"), 8000.0)

    def test_formant_above_nyquist_clamped(self):
        # Should not blow up at a low sampling rate.
        out = formant_filter(np.random.default_rng(2).normal(size=500),
                             (730.0, 1090.0, 2440.0), 2000.0)
        assert np.all(np.isfinite(out))
