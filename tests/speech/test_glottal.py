"""Tests for repro.speech.glottal."""

import numpy as np
import pytest

from repro.speech.glottal import glottal_source, rosenberg_pulse


class TestRosenbergPulse:
    def test_length(self):
        assert rosenberg_pulse(40).shape == (40,)

    def test_tiny_length(self):
        assert rosenberg_pulse(1).shape == (1,)

    def test_normalised(self):
        pulse = rosenberg_pulse(50)
        assert np.max(np.abs(pulse)) == pytest.approx(1.0)

    def test_has_closure_spike(self):
        """The flow derivative has a strong negative spike at closure."""
        pulse = rosenberg_pulse(60)
        assert pulse.min() < -0.5 or pulse.max() > 0.5


class TestGlottalSource:
    def _f0(self, n, value=150.0):
        return np.full(n, value)

    def test_output_length(self):
        rng = np.random.default_rng(0)
        out = glottal_source(self._f0(2000), 8000.0, rng)
        assert out.shape == (2000,)

    def test_periodicity_matches_f0(self):
        rng = np.random.default_rng(1)
        fs = 8000.0
        f0 = 200.0
        out = glottal_source(self._f0(8000, f0), fs, rng, jitter=0.0, breathiness=0.0)
        spectrum = np.abs(np.fft.rfft(out * np.hanning(out.size)))
        freqs = np.fft.rfftfreq(out.size, 1 / fs)
        # Strongest component at f0 or a low harmonic of it.
        peak = freqs[np.argmax(spectrum[1:]) + 1]
        ratio = peak / f0
        assert abs(ratio - round(ratio)) < 0.1

    def test_unvoiced_regions_are_quiet(self):
        rng = np.random.default_rng(2)
        f0 = np.concatenate([np.zeros(4000), np.full(4000, 150.0)])
        out = glottal_source(f0, 8000.0, rng, breathiness=0.1)
        assert np.std(out[:3500]) < 0.5 * np.std(out[4500:])

    def test_breathiness_raises_noise_floor(self):
        f0 = self._f0(8000)
        clean = glottal_source(f0, 8000.0, np.random.default_rng(3), breathiness=0.0)
        breathy = glottal_source(f0, 8000.0, np.random.default_rng(3), breathiness=0.6)
        def hf_energy(x):
            spectrum = np.abs(np.fft.rfft(x))
            return spectrum[len(spectrum) // 2 :].sum() / spectrum.sum()
        assert hf_energy(breathy) > hf_energy(clean)

    def test_dark_tilt_reduces_high_frequencies(self):
        f0 = self._f0(8000)
        bright = glottal_source(
            f0, 8000.0, np.random.default_rng(4), tilt_db_per_octave=-4.0,
            breathiness=0.0,
        )
        dark = glottal_source(
            f0, 8000.0, np.random.default_rng(4), tilt_db_per_octave=-20.0,
            breathiness=0.0,
        )
        def centroid(x):
            spectrum = np.abs(np.fft.rfft(x)) ** 2
            freqs = np.fft.rfftfreq(x.size, 1 / 8000.0)
            return np.sum(freqs * spectrum) / np.sum(spectrum)
        assert centroid(dark) < centroid(bright)

    def test_empty_contour(self):
        out = glottal_source(np.zeros(0), 8000.0, np.random.default_rng(0))
        assert out.size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            glottal_source(np.zeros((2, 2)), 8000.0, np.random.default_rng(0))
