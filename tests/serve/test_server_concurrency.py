"""Concurrency hammer: many submitter threads against one server.

Follows tests/obs/test_concurrency.py — barrier-synchronised threads,
then assert nothing was lost, duplicated, or answered twice.
"""

import threading

import numpy as np
import pytest

from repro.obs import metrics, reset_observability, tracer
from repro.parallel import ExecutorPool
from repro.serve.bundle import load_bundle
from repro.serve.registry import ModelRegistry
from repro.serve.server import InferenceServer, ServerOverloaded

from tests.serve.conftest import make_blobs

N_THREADS = 8
N_PER_THREAD = 25


@pytest.fixture()
def hammer_setup(packed_bundle, packed_classifier_bundle):
    registry = ModelRegistry()
    registry.register(packed_bundle)
    registry.register(packed_classifier_bundle)
    X, _ = make_blobs(n_per_class=80, seed=21)
    return registry, X


class TestHammer:
    def test_every_request_answered_exactly_once(
        self, hammer_setup, packed_bundle
    ):
        """N threads, mixed feature/window requests, two models: every
        request is answered exactly once and feature-request answers are
        identical to serial in-memory inference."""
        reset_observability()
        registry, X = hammer_setup
        bundle = load_bundle(packed_bundle)
        expected = bundle.predict_proba(X)
        barrier = threading.Barrier(N_THREADS)
        results = [None] * N_THREADS
        errors = []
        rng_windows = np.random.default_rng(3)
        windows = [rng_windows.normal(size=128) for _ in range(N_THREADS)]

        server = InferenceServer(
            registry, model="blobs", max_batch=16, max_linger_s=0.002,
            max_queue=1024,
            pool=ExecutorPool(n_jobs=2, executor="thread"),
        ).start()

        def hammer(worker: int) -> None:
            try:
                barrier.wait()
                futures = []
                for i in range(N_PER_THREAD):
                    row_idx = (worker * N_PER_THREAD + i) % len(X)
                    if i % 5 == 4:
                        # A sprinkle of raw-window and fallback-model work.
                        futures.append(
                            ("window", None,
                             server.submit_window(windows[worker], fs=500.0)),
                        )
                        futures.append(
                            ("clf", row_idx,
                             server.submit_features(
                                 X[row_idx], model="blobs-clf")),
                        )
                    futures.append(
                        ("features", row_idx,
                         server.submit_features(X[row_idx])),
                    )
                results[worker] = [
                    (kind, idx, f.result(timeout=60.0))
                    for kind, idx, f in futures
                ]
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((worker, exc))

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.stop()

        assert errors == []
        flat = [entry for per_thread in results for entry in per_thread]
        n_submitted = len(flat)
        # Exactly-once: one answer per submitted request, ids unique.
        assert server.requests_accepted == n_submitted
        assert server.requests_answered == n_submitted
        ids = [r.request_id for _, _, r in flat]
        assert len(set(ids)) == n_submitted
        assert all(r.ok for _, _, r in flat)
        # Batched answers match serial in-memory inference (labels
        # exactly; probas to within BLAS batch-shape noise).
        for kind, idx, r in flat:
            if kind == "features":
                assert r.label == bundle.labels[int(np.argmax(expected[idx]))]
                np.testing.assert_allclose(
                    r.proba, expected[idx], rtol=1e-9, atol=1e-12
                )
                assert r.model == "blobs"
            elif kind == "clf":
                assert r.model == "blobs-clf"
        # The books balance across every thread and batch.
        spans = tracer().find("serve.request")
        assert len(spans) == n_submitted
        assert metrics().counter_value(
            "serve.responses", status="ok"
        ) == n_submitted
        batch_spans = tracer().find("serve.batch")
        assert sum(s.labels["n"] for s in batch_spans) == n_submitted

    def test_hammer_with_overload_never_loses_an_answer(self, hammer_setup):
        """Under a queue small enough to overload, every *accepted*
        request is still answered exactly once."""
        reset_observability()
        registry, X = hammer_setup
        barrier = threading.Barrier(N_THREADS)
        answered = [0] * N_THREADS
        rejected = [0] * N_THREADS
        errors = []

        server = InferenceServer(
            registry, model="blobs-clf", max_batch=4, max_linger_s=0.0,
            max_queue=8,
        ).start()

        def hammer(worker: int) -> None:
            try:
                barrier.wait()
                futures = []
                for i in range(N_PER_THREAD):
                    try:
                        futures.append(
                            server.submit_features(X[(worker + i) % len(X)])
                        )
                    except ServerOverloaded:
                        rejected[worker] += 1
                for f in futures:
                    r = f.result(timeout=60.0)
                    assert r.ok, r.error
                    answered[worker] += 1
            except Exception as exc:  # noqa: BLE001
                errors.append((worker, exc))

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.stop()

        assert errors == []
        total = N_THREADS * N_PER_THREAD
        assert sum(answered) + sum(rejected) == total
        assert server.requests_accepted == sum(answered)
        assert server.requests_answered == sum(answered)
        assert metrics().counter_value(
            "serve.responses", status="ok"
        ) == sum(answered)

    def test_hot_swap_under_load(self, hammer_setup, tmp_path, fitted_logistic):
        """Swapping the default version mid-burst never drops a request;
        each answer comes from one of the two versions, never neither."""
        from repro.serve.bundle import ModelBundle, save_bundle

        registry, X = hammer_setup
        v2 = ModelBundle.create("blobs-clf", "2", classifier=fitted_logistic)
        path = tmp_path / "clf-2"
        save_bundle(v2, path)
        registry.register(path)
        registry.set_default("blobs-clf", "1")

        stop_swapping = threading.Event()

        def swapper() -> None:
            flip = False
            while not stop_swapping.is_set():
                registry.set_default("blobs-clf", "2" if flip else "1")
                flip = not flip

        swap_thread = threading.Thread(target=swapper)
        swap_thread.start()
        try:
            with InferenceServer(
                registry, model="blobs-clf", max_batch=8, max_linger_s=0.001
            ) as server:
                futures = [
                    server.submit_features(X[i % len(X)]) for i in range(100)
                ]
                results = [f.result(timeout=60.0) for f in futures]
        finally:
            stop_swapping.set()
            swap_thread.join()
        assert len(results) == 100
        assert all(r.ok for r in results)
