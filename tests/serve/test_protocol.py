"""Wire-protocol framing: round trips, torn frames, hostile bytes."""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.protocol import (
    KIND_JSON,
    FrameDecoder,
    ProtocolError,
    encode_message,
)


def decode_all(blob: bytes, **kwargs):
    return FrameDecoder(**kwargs).feed(blob)


class TestRoundTrip:
    def test_json_message_round_trips(self):
        message = {"op": "predict", "id": 7, "payload": [1.0, 2.5, -3.0]}
        [(decoded, tensor)] = decode_all(encode_message(message))
        assert decoded == message
        assert tensor is None

    def test_tensor_message_round_trips(self):
        tensor = np.linspace(-1.0, 1.0, 24)
        message = {"op": "predict", "id": 1, "kind": "features"}
        [(decoded, out)] = decode_all(encode_message(message, tensor))
        assert decoded == message  # the _tensor header entry is stripped
        np.testing.assert_array_equal(out, tensor)
        assert out.dtype == np.float64

    def test_float32_tensor_keeps_its_dtype(self):
        tensor = np.arange(6, dtype=np.float32).reshape(6)
        [(_, out)] = decode_all(encode_message({"op": "x"}, tensor))
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, tensor)

    def test_multiple_frames_in_one_feed(self):
        blob = b"".join(encode_message({"op": "ping", "id": i}) for i in range(5))
        messages = decode_all(blob)
        assert [m["id"] for m, _ in messages] == [0, 1, 2, 3, 4]


class TestPartialReads:
    def test_byte_at_a_time_reassembly(self):
        """A frame torn into single bytes decodes exactly once, at the end."""
        frames = [
            encode_message({"op": "ping", "id": 1}),
            encode_message({"op": "predict", "id": 2}, np.arange(4.0)),
        ]
        decoder = FrameDecoder()
        out = []
        blob = b"".join(frames)
        for i in range(len(blob)):
            out.extend(decoder.feed(blob[i : i + 1]))
        assert len(out) == 2
        assert out[0][0]["id"] == 1
        np.testing.assert_array_equal(out[1][1], np.arange(4.0))
        assert decoder.pending_bytes() == 0

    def test_torn_frame_stays_buffered(self):
        frame = encode_message({"op": "ping", "id": 9})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.pending_bytes() == len(frame) - 1
        [(message, _)] = decoder.feed(frame[-1:])
        assert message["id"] == 9


class TestHostileBytes:
    def test_oversized_frame_rejected_before_buffering(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        huge = struct.pack("!I", 1 << 20)
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(huge)

    def test_zero_length_frame_rejected(self):
        with pytest.raises(ProtocolError, match="zero-length"):
            decode_all(struct.pack("!I", 0))

    def test_garbage_bytes_raise(self):
        # Random-ish bytes decode as an absurd length or bad JSON; either
        # way the decoder refuses instead of guessing.
        with pytest.raises(ProtocolError):
            decode_all(b"\x00\x00\x00\x05hello")

    def test_unknown_kind_byte_rejected(self):
        body = bytes([0x7F]) + b"{}"
        with pytest.raises(ProtocolError, match="kind byte"):
            decode_all(struct.pack("!I", len(body)) + body)

    def test_non_object_json_rejected(self):
        body = bytes([KIND_JSON]) + b"[1,2,3]"
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_all(struct.pack("!I", len(body)) + body)

    def test_poisoned_decoder_stays_dead(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(struct.pack("!I", 0))
        with pytest.raises(ProtocolError, match="close the connection"):
            decoder.feed(encode_message({"op": "ping"}))

    def test_tensor_dtype_whitelist(self):
        """An object dtype smuggled into the header must never reach frombuffer."""
        header = json.dumps(
            {"op": "x", "_tensor": {"dtype": "|O8", "shape": [1]}}
        ).encode()
        body = bytes([0x02]) + struct.pack("!I", len(header)) + header + b"\x00" * 8
        with pytest.raises(ProtocolError, match="dtype"):
            decode_all(struct.pack("!I", len(body)) + body)

    def test_tensor_size_lie_rejected(self):
        frame = bytearray(encode_message({"op": "x"}, np.arange(4.0)))
        truncated = bytes(frame[:-8])
        fixed = struct.pack("!I", len(truncated) - 4) + truncated[4:]
        with pytest.raises(ProtocolError, match="bytes"):
            decode_all(fixed)

    @pytest.mark.parametrize(
        "shape, raw",
        [
            # 274177 * 67280421310721 == 2**64 + 1: an int64 product wraps
            # to 1 element, so the size check would accept an 8-byte body
            # and reshape would raise a plain ValueError instead.
            ([274177, 67280421310721], b"\x00" * 8),
            ([2**32, 2**32], b""),  # product wraps to 0 elements
        ],
    )
    def test_overflowing_shape_product_rejected_as_protocol_error(self, shape, raw):
        header = json.dumps(
            {"op": "x", "_tensor": {"dtype": "<f8", "shape": shape}}
        ).encode()
        body = bytes([0x02]) + struct.pack("!I", len(header)) + header + raw
        with pytest.raises(ProtocolError, match="bytes"):
            decode_all(struct.pack("!I", len(body)) + body)


# JSON-representable scalar values survive a round trip exactly.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=20),
)


class TestProperties:
    @given(
        message=st.dictionaries(
            st.text(min_size=1, max_size=10).filter(lambda s: s != "_tensor"),
            _scalars,
            max_size=8,
        )
    )
    @settings(max_examples=75, deadline=None)
    def test_json_round_trip_property(self, message):
        [(decoded, tensor)] = decode_all(encode_message(message))
        assert decoded == message
        assert tensor is None

    @given(
        values=st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=0,
            max_size=64,
        ),
        dtype=st.sampled_from([np.float32, np.float64]),
        msg_id=st.integers(min_value=0, max_value=2**31),
        chunk=st.integers(min_value=1, max_value=13),
    )
    @settings(max_examples=50, deadline=None)
    def test_tensor_round_trip_property_under_arbitrary_chunking(
        self, values, dtype, msg_id, chunk
    ):
        tensor = np.asarray(values, dtype=dtype)
        blob = encode_message({"op": "predict", "id": msg_id}, tensor)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(blob), chunk):
            out.extend(decoder.feed(blob[i : i + chunk]))
        [(decoded, round_tripped)] = out
        assert decoded == {"op": "predict", "id": msg_id}
        assert round_tripped.dtype == tensor.dtype
        np.testing.assert_array_equal(round_tripped, tensor)
