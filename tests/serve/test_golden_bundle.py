"""Golden-parity guard for the bundle pack/load path.

A committed JSON fixture pins the predictions of a deterministic
pipeline (logistic fallback + tiny feature CNN) on fixed probe rows.
Two properties are pinned:

- the packed-then-loaded bundle answers **byte-identically** to the
  in-memory pipeline it was packed from (serialisation adds nothing
  and loses nothing), and
- both match the committed fixture, so any drift in the persistence
  format, the scaler, the CNN weight codec or the predict path fails
  here first.

Regenerate (after an *intentional* numerics or format change) with::

    PYTHONPATH=src python tests/serve/test_golden_bundle.py --regenerate
"""

import json
from pathlib import Path

import numpy as np

from repro.eval.experiment import make_classifier
from repro.ml.logistic import LogisticRegression
from repro.serve.bundle import ModelBundle, load_bundle, save_bundle

FIXTURE = Path(__file__).parent / "fixtures" / "golden_bundle_predictions.json"

N_CLASSES = 3
N_FEATURES = 24
N_PROBES = 8


def _train_data():
    rng = np.random.default_rng(17)
    centers = rng.normal(0, 3.0, size=(N_CLASSES, N_FEATURES))
    X = np.vstack(
        [centers[k] + 0.4 * rng.normal(size=(25, N_FEATURES)) for k in range(N_CLASSES)]
    )
    y = np.repeat([f"emo{k}" for k in range(N_CLASSES)], 25)
    return X, y


def _probe_rows():
    return np.random.default_rng(99).normal(0, 2.0, size=(N_PROBES, N_FEATURES))


def _build_bundle():
    X, y = _train_data()
    clf = LogisticRegression().fit(X, y)
    cnn = make_classifier("cnn", seed=0, fast=True)
    cnn.epochs = 3
    cnn.fit(X, y)
    return ModelBundle.create(
        "golden", "1", classifier=clf, cnn=cnn,
        provenance={"source": "tests/serve/test_golden_bundle.py"},
    )


def _predictions(bundle):
    probes = _probe_rows()
    return {
        "labels": [str(label) for label in bundle.labels],
        "cnn_proba": bundle.predict_proba_with("cnn", probes).tolist(),
        "classifier_proba": bundle.predict_proba_with("classifier", probes).tolist(),
        "predicted": [str(label) for label in bundle.predict(probes)],
    }


class TestGoldenBundleParity:
    def test_fixture_exists(self):
        assert FIXTURE.exists(), (
            f"golden fixture missing at {FIXTURE}; regenerate with "
            f"`PYTHONPATH=src python {__file__} --regenerate`"
        )

    def test_packed_bundle_matches_in_memory_bitwise(self, tmp_path):
        """load(save(bundle)) answers byte-identically to the original."""
        bundle = _build_bundle()
        path = tmp_path / "golden"
        save_bundle(bundle, path)
        loaded = load_bundle(path)
        probes = _probe_rows()
        assert np.array_equal(
            bundle.predict_proba_with("cnn", probes),
            loaded.predict_proba_with("cnn", probes),
        )
        assert np.array_equal(
            bundle.predict_proba_with("classifier", probes),
            loaded.predict_proba_with("classifier", probes),
        )
        assert list(bundle.predict(probes)) == list(loaded.predict(probes))

    def test_loaded_bundle_reproduces_fixture(self, tmp_path):
        """The packed-then-loaded predictions are pinned to the fixture."""
        golden = json.loads(FIXTURE.read_text())
        bundle = _build_bundle()
        path = tmp_path / "golden.zip"
        save_bundle(bundle, path)
        got = _predictions(load_bundle(path))
        assert got["labels"] == golden["labels"]
        assert got["predicted"] == golden["predicted"]
        np.testing.assert_allclose(
            got["cnn_proba"], golden["cnn_proba"], rtol=1e-12,
            err_msg="CNN predictions through the bundle codec drifted",
        )
        np.testing.assert_allclose(
            got["classifier_proba"], golden["classifier_proba"], rtol=1e-12,
            err_msg="classifier predictions through the bundle codec drifted",
        )


def _regenerate() -> None:
    import tempfile

    bundle = _build_bundle()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "golden"
        save_bundle(bundle, path)
        payload = _predictions(load_bundle(path))
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {FIXTURE}: predicted={payload['predicted']}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
