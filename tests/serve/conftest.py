"""Shared fixtures for the serving-layer tests.

Training is the expensive part, so fitted models are session-scoped;
packed bundles are rebuilt per test from those shared models (packing
is cheap and tests mutate the artifacts).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiment import make_classifier
from repro.ml.logistic import LogisticRegression
from repro.serve.bundle import ModelBundle, save_bundle

N_CLASSES = 3
N_FEATURES = 24  # the Table II feature schema width


def make_blobs(n_per_class=30, k=N_CLASSES, d=N_FEATURES, spread=0.5, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, size=(k, d))
    X = np.vstack(
        [centers[i] + spread * rng.normal(size=(n_per_class, d)) for i in range(k)]
    )
    y = np.repeat([f"emo{i}" for i in range(k)], n_per_class)
    return X, y


@pytest.fixture(scope="session")
def blob_data():
    return make_blobs()


@pytest.fixture(scope="session")
def fitted_logistic(blob_data):
    X, y = blob_data
    return LogisticRegression().fit(X, y)


@pytest.fixture(scope="session")
def fitted_cnn(blob_data):
    """A tiny (but real) feature CNN trained on the blob data."""
    X, y = blob_data
    cnn = make_classifier("cnn", seed=0, fast=True)
    cnn.epochs = 3
    cnn.fit(X, y)
    return cnn


@pytest.fixture()
def packed_bundle(tmp_path, fitted_logistic, fitted_cnn):
    """A freshly packed CNN+fallback bundle directory; returns its path."""
    bundle = ModelBundle.create(
        "blobs", "1", classifier=fitted_logistic, cnn=fitted_cnn,
        provenance={"source": "tests"},
    )
    path = tmp_path / "blobs-1"
    save_bundle(bundle, path)
    return path


@pytest.fixture()
def packed_classifier_bundle(tmp_path, fitted_logistic):
    """A classifier-only bundle zip; returns its path."""
    bundle = ModelBundle.create("blobs-clf", "1", classifier=fitted_logistic)
    path = tmp_path / "blobs-clf-1.zip"
    save_bundle(bundle, path)
    return path
