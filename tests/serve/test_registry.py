"""ModelRegistry: name@version resolution, warm LRU, hot swap."""

import numpy as np
import pytest

from repro.serve.bundle import ModelBundle, save_bundle
from repro.serve.registry import ModelRegistry, parse_ref


class TestParseRef:
    def test_name_and_version(self):
        assert parse_ref("blobs@3") == ("blobs", "3")

    def test_bare_name(self):
        assert parse_ref("blobs") == ("blobs", None)

    @pytest.mark.parametrize("bad", ["", "@1", "name@", "  "])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_ref(bad)


@pytest.fixture()
def versioned_paths(tmp_path, fitted_logistic):
    """Three versions of the same bundle name on disk."""
    paths = {}
    for version in ("1", "2", "3"):
        bundle = ModelBundle.create("blobs", version, classifier=fitted_logistic)
        path = tmp_path / f"blobs-{version}"
        save_bundle(bundle, path)
        paths[version] = path
    return paths


class TestResolution:
    def test_register_reads_manifest(self, packed_classifier_bundle):
        registry = ModelRegistry()
        assert registry.register(packed_classifier_bundle) == ("blobs-clf", "1")
        assert registry.refs() == ["blobs-clf@1"]

    def test_bare_name_resolves_to_newest_registration(self, versioned_paths):
        registry = ModelRegistry()
        for version, path in versioned_paths.items():
            registry.register(path)
        assert registry.resolve("blobs") == ("blobs", "3")
        assert registry.versions("blobs") == ["1", "2", "3"]

    def test_hot_swap_default(self, versioned_paths, blob_data):
        X, _ = blob_data
        registry = ModelRegistry()
        for path in versioned_paths.values():
            registry.register(path)
        registry.set_default("blobs", "1")
        assert registry.get("blobs").manifest.version == "1"
        # The swap is visible to the next bare-name lookup immediately,
        # while explicit refs keep working.
        registry.set_default("blobs", "2")
        assert registry.get("blobs").manifest.version == "2"
        assert registry.get("blobs@1").manifest.version == "1"
        np.testing.assert_array_equal(
            registry.get("blobs@1").predict(X), registry.get("blobs@2").predict(X)
        )

    def test_unknown_refs_raise(self, versioned_paths):
        registry = ModelRegistry()
        registry.register(versioned_paths["1"])
        with pytest.raises(KeyError, match="unknown bundle"):
            registry.get("nope")
        with pytest.raises(KeyError, match="unknown bundle"):
            registry.get("blobs@9")
        with pytest.raises(KeyError, match="unknown bundle"):
            registry.set_default("blobs", "9")


class TestWarmLRU:
    def test_cache_hit_returns_same_object(self, versioned_paths):
        registry = ModelRegistry(max_loaded=2)
        registry.register(versioned_paths["1"])
        first = registry.get("blobs@1")
        assert registry.get("blobs@1") is first
        assert registry.loads == 1
        assert registry.hits == 1

    def test_lru_evicts_least_recently_used(self, versioned_paths):
        registry = ModelRegistry(max_loaded=2)
        for path in versioned_paths.values():
            registry.register(path)
        registry.get("blobs@1")
        registry.get("blobs@2")
        registry.get("blobs@1")        # refresh 1: now 2 is the LRU
        registry.get("blobs@3")        # evicts 2
        assert registry.loaded_refs() == ["blobs@1", "blobs@3"]
        assert registry.evictions == 1
        # An evicted bundle reloads transparently (fresh object).
        v2_again = registry.get("blobs@2")
        assert v2_again.manifest.version == "2"
        assert registry.loads == 4

    def test_max_loaded_validation(self):
        with pytest.raises(ValueError):
            ModelRegistry(max_loaded=0)

    def test_reregistration_drops_stale_warm_copy(
        self, tmp_path, fitted_logistic
    ):
        registry = ModelRegistry()
        bundle = ModelBundle.create("b", "1", classifier=fitted_logistic)
        path = tmp_path / "b1"
        save_bundle(bundle, path)
        registry.register(path)
        stale = registry.get("b@1")
        # Republish the same ref (new artifact content at a new path).
        path2 = tmp_path / "b1-republished"
        save_bundle(bundle, path2)
        registry.register(path2, name="b", version="1")
        assert registry.get("b@1") is not stale

    def test_tampered_artifact_rejected_at_registration(
        self, packed_classifier_bundle
    ):
        from repro.serve.bundle import BundleIntegrityError

        import zipfile

        with zipfile.ZipFile(packed_classifier_bundle) as zf:
            members = {i.filename: zf.read(i) for i in zf.infolist()}
        members["classifier.json"] = members["classifier.json"][:-1] + b"!"
        with zipfile.ZipFile(packed_classifier_bundle, "w") as zf:
            for name, data in members.items():
                zf.writestr(name, data)
        registry = ModelRegistry()
        with pytest.raises(BundleIntegrityError):
            registry.register(packed_classifier_bundle)
