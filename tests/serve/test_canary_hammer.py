"""Concurrency hammer: canary routing under LRU eviction and hot swaps.

Satellite of the quantised-serving PR: a live canary must survive
simultaneous warm-cache eviction churn (``max_loaded=1`` forces the two
versions to evict each other on every alternation) and ``set_default``
hot swaps, with every accepted request answered exactly once and no
answer produced from a stale or unregistered bundle ref.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import metrics, reset_observability
from repro.parallel import ExecutorPool
from repro.serve.bundle import load_bundle, quantize_bundle, save_bundle
from repro.serve.registry import ModelRegistry
from repro.serve.server import InferenceServer
from tests.serve.conftest import make_blobs

N_THREADS = 4
N_PER_THREAD = 40
FRACTION = 0.25


@pytest.fixture()
def churn_registry(tmp_path, packed_bundle):
    """Two versions of ``blobs`` behind a single-slot warm cache."""
    float_bundle = load_bundle(packed_bundle)
    qb = quantize_bundle(float_bundle, version="2-int8")
    q_path = tmp_path / "blobs-2-int8.zip"
    save_bundle(qb, q_path)
    registry = ModelRegistry(max_loaded=1)
    registry.register(packed_bundle)
    registry.register(q_path)
    registry.set_default("blobs", "1")
    return registry


def test_hammer_exactly_once_under_eviction_and_hot_swap(churn_registry):
    reset_observability()
    X, _ = make_blobs(n_per_class=4)
    total = N_THREADS * N_PER_THREAD
    results = []
    results_lock = threading.Lock()
    start = threading.Barrier(N_THREADS + 1)
    swaps_done = threading.Event()

    def client(seed):
        start.wait()
        futures = [
            server.submit_features(
                X[(seed + i) % X.shape[0]], timeout_s=60.0
            )
            for i in range(N_PER_THREAD)
        ]
        answers = [f.result(timeout=60.0) for f in futures]
        with results_lock:
            results.extend(answers)

    def swapper():
        start.wait()
        # Hot-swap the default back and forth while traffic is live;
        # interleave direct loads so the one-slot LRU keeps evicting.
        for i in range(30):
            churn_registry.set_default("blobs", "2-int8" if i % 2 else "1")
            churn_registry.get("blobs@2-int8" if i % 2 else "blobs@1")
        churn_registry.set_default("blobs", "1")
        swaps_done.set()

    with InferenceServer(
        churn_registry,
        model="blobs",
        max_batch=8,
        max_queue=2 * total,
        pool=ExecutorPool(n_jobs=2, executor="thread"),
    ) as server:
        server.set_canary("blobs", "2-int8", fraction=FRACTION)
        threads = [
            threading.Thread(target=client, args=(i * 7,))
            for i in range(N_THREADS)
        ]
        mutator = threading.Thread(target=swapper)
        for t in threads:
            t.start()
        mutator.start()
        for t in threads:
            t.join(timeout=120.0)
        mutator.join(timeout=120.0)
        assert swaps_done.is_set()
        status = server.canary_status("blobs")

    # exactly once: every accepted request produced exactly one answer
    assert len(results) == total
    assert server.requests_accepted == total
    assert server.requests_answered == total
    assert len({r.request_id for r in results}) == total
    assert all(r.ok for r in results), [r.error for r in results if not r.ok][:3]

    # no stale refs: every answer names a currently registered ref
    valid = {"blobs", "blobs@1", "blobs@2-int8"}
    assert {r.model for r in results} <= valid

    # the deterministic split held exactly despite the churn
    assert status["routed"] == int(status["submitted"] * FRACTION)
    routed = sum(r.model == "blobs@2-int8" for r in results)
    assert routed == status["routed"]

    # per-version counters account for every answer
    per_version = metrics().counter_group("serve.version.responses", "model")
    assert sum(per_version.values()) == total
    # the candidate served at least its canary share (bare-name answers
    # may also resolve to it while the default is swapped over)
    assert per_version.get("blobs@2-int8", 0) >= routed

    # eviction churn really happened (one warm slot, two live versions)
    assert churn_registry.evictions > 0
    assert len(churn_registry.loaded_refs()) == 1


def test_rollback_during_hammer_drops_nothing(churn_registry):
    reset_observability()
    X, _ = make_blobs(n_per_class=4)
    rolled_back = threading.Event()

    def flipper():
        # roll the canary back and re-arm it while traffic is in flight
        for _ in range(10):
            server.set_canary("blobs", "2-int8", fraction=0.5)
            server.rollback_canary("blobs")
        rolled_back.set()

    with InferenceServer(
        churn_registry, model="blobs", max_batch=8, max_queue=512
    ) as server:
        server.set_canary("blobs", "2-int8", fraction=0.5)
        mutator = threading.Thread(target=flipper)
        mutator.start()
        futures = [
            server.submit_features(X[i % X.shape[0]], timeout_s=60.0)
            for i in range(120)
        ]
        answers = [f.result(timeout=60.0) for f in futures]
        mutator.join(timeout=60.0)
        assert rolled_back.is_set()
        assert server.canary_status("blobs") is None
        assert churn_registry.default_version("blobs") == "1"

    # an accepted request is never dropped by a rollback
    assert len(answers) == 120
    assert all(r.ok for r in answers)
    assert server.requests_accepted == server.requests_answered == 120
