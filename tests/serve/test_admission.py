"""Admission control: token buckets, WFQ fairness, lanes, shed hints."""

from __future__ import annotations

import pytest

from repro.serve.admission import (
    AdmissionController,
    ShedDecision,
    TenantConfig,
    TokenBucket,
)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTokenBucket:
    def test_burst_then_starve_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        assert all(bucket.try_take() for _ in range(5))
        assert not bucket.try_take()
        assert bucket.time_until() == pytest.approx(0.1)
        clock.advance(0.1)
        assert bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == pytest.approx(3.0)

    def test_infinite_rate_never_sheds(self):
        bucket = TokenBucket(rate=float("inf"), burst=1.0, clock=FakeClock())
        assert all(bucket.try_take() for _ in range(1000))
        assert bucket.time_until() == 0.0


class TestTenantConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"weight": 0.0},
            {"rate": 0.0},
            {"burst": -1.0},
            {"max_backlog": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantConfig("t", **kwargs)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            TenantConfig("")


def controller(clock, *tenants, **kwargs):
    return AdmissionController(list(tenants), clock=clock, **kwargs)


class TestOfferAndShed:
    def test_admits_within_rate_and_backlog(self):
        clock = FakeClock()
        ctl = controller(clock, TenantConfig("a", rate=100.0, burst=10.0))
        assert ctl.offer("a", "realtime", "req") is None
        assert ctl.backlog() == 1

    def test_rate_shed_carries_refill_eta(self):
        clock = FakeClock()
        ctl = controller(clock, TenantConfig("a", rate=10.0, burst=1.0))
        assert ctl.offer("a", "realtime", 1) is None
        decision = ctl.offer("a", "realtime", 2)
        assert isinstance(decision, ShedDecision)
        assert decision.reason == "rate"
        assert decision.retry_after_s == pytest.approx(0.1)
        assert ctl.backlog() == 1  # the shed request was never queued

    def test_backlog_shed_uses_drain_rate(self):
        clock = FakeClock()
        ctl = AdmissionController(
            [TenantConfig("a", max_backlog=2, burst=100.0, rate=float("inf"))],
            clock=clock,
            drain_rate=lambda: 10.0,
        )
        assert ctl.offer("a", "realtime", 1) is None
        assert ctl.offer("a", "realtime", 2) is None
        decision = ctl.offer("a", "realtime", 3)
        assert decision.reason == "backlog"
        assert decision.retry_after_s == pytest.approx(0.2)

    def test_draining_sheds_everything_but_keeps_queued(self):
        clock = FakeClock()
        ctl = controller(clock, TenantConfig("a"))
        assert ctl.offer("a", "realtime", 1) is None
        ctl.start_draining()
        decision = ctl.offer("a", "realtime", 2)
        assert decision.reason == "draining"
        assert ctl.backlog() == 1
        assert ctl.next().item == 1  # queued work still drains

    def test_unknown_lane_rejected(self):
        ctl = controller(FakeClock())
        with pytest.raises(ValueError, match="lane"):
            ctl.offer("a", "express", 1)

    def test_unknown_tenant_gets_default_policy(self):
        clock = FakeClock()
        ctl = AdmissionController(
            clock=clock,
            default_config=TenantConfig("default", rate=10.0, burst=1.0),
        )
        assert ctl.offer("stranger", "realtime", 1) is None
        assert ctl.offer("stranger", "realtime", 2).reason == "rate"
        # Another stranger gets a fresh private bucket, not a shared one.
        assert ctl.offer("stranger2", "realtime", 1) is None


class TestWeightedFairQueueing:
    def test_interleaves_equal_weights_round_robin(self):
        clock = FakeClock()
        ctl = controller(clock, TenantConfig("a"), TenantConfig("b"))
        for i in range(3):
            ctl.offer("a", "realtime", f"a{i}")
        for i in range(3):
            ctl.offer("b", "realtime", f"b{i}")
        order = [ctl.next().tenant for _ in range(6)]
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_weights_set_the_share(self):
        """A weight-3 tenant drains three requests per weight-1 request."""
        clock = FakeClock()
        ctl = controller(
            clock,
            TenantConfig("heavy", weight=3.0, burst=100.0),
            TenantConfig("light", weight=1.0, burst=100.0),
        )
        for i in range(30):
            ctl.offer("heavy", "realtime", i)
        for i in range(10):
            ctl.offer("light", "realtime", i)
        first_12 = [ctl.next().tenant for _ in range(12)]
        assert first_12.count("heavy") == 9
        assert first_12.count("light") == 3

    def test_flood_cannot_starve_a_trickle(self):
        """10:1 arrival imbalance still drains 1:1 at equal weights."""
        clock = FakeClock()
        ctl = controller(
            clock,
            TenantConfig("flood", burst=1000.0),
            TenantConfig("calm", burst=1000.0),
        )
        for i in range(100):
            ctl.offer("flood", "realtime", i)
        for i in range(10):
            ctl.offer("calm", "realtime", i)
        first_20 = [ctl.next().tenant for _ in range(20)]
        assert first_20.count("calm") == 10
        assert first_20.count("flood") == 10

    def test_late_arrival_does_not_collect_idle_credit(self):
        """A tenant that was idle starts at the current virtual time, not 0."""
        clock = FakeClock()
        ctl = controller(clock, TenantConfig("a"), TenantConfig("b"))
        for i in range(10):
            ctl.offer("a", "realtime", i)
        for _ in range(8):
            assert ctl.next().tenant == "a"
        for i in range(5):
            ctl.offer("b", "realtime", i)
        # b interleaves from here on; it does not drain 5-in-a-row.
        nxt = [ctl.next().tenant for _ in range(4)]
        assert nxt in (["a", "b", "a", "b"], ["b", "a", "b", "a"])


class TestLanes:
    def test_realtime_strictly_before_backfill(self):
        clock = FakeClock()
        ctl = controller(clock, TenantConfig("a", burst=100.0))
        ctl.offer("a", "backfill", "bulk0")
        ctl.offer("a", "realtime", "rt0")
        ctl.offer("a", "backfill", "bulk1")
        ctl.offer("a", "realtime", "rt1")
        drained = [ctl.next().item for _ in range(4)]
        assert drained == ["rt0", "rt1", "bulk0", "bulk1"]

    def test_backfill_withheld_when_disallowed(self):
        clock = FakeClock()
        ctl = controller(clock, TenantConfig("a", burst=100.0))
        ctl.offer("a", "backfill", "bulk")
        assert ctl.next(allow_backfill=False) is None
        assert ctl.backlog(lane="backfill") == 1
        assert ctl.next(allow_backfill=True).item == "bulk"

    def test_lanes_have_independent_virtual_time(self):
        clock = FakeClock()
        ctl = controller(
            clock,
            TenantConfig("a", burst=100.0),
            TenantConfig("b", burst=100.0),
        )
        for i in range(4):
            ctl.offer("a", "realtime", f"rt{i}")
            ctl.offer("a", "backfill", f"bk-a{i}")
            ctl.offer("b", "backfill", f"bk-b{i}")
        # Draining realtime does not skew backfill fairness between a and b.
        for _ in range(4):
            assert ctl.next().lane == "realtime"
        backfill_order = [ctl.next().tenant for _ in range(8)]
        assert backfill_order.count("a") == 4
        assert backfill_order.count("b") == 4
        assert backfill_order[:2] in (["a", "b"], ["b", "a"])

    def test_backlog_filters(self):
        clock = FakeClock()
        ctl = controller(clock, TenantConfig("a", burst=100.0))
        ctl.offer("a", "realtime", 1)
        ctl.offer("a", "backfill", 2)
        ctl.offer("a", "backfill", 3)
        assert ctl.backlog() == 3
        assert ctl.backlog(lane="realtime") == 1
        assert ctl.backlog(lane="backfill") == 2
        assert ctl.backlog(tenant="a") == 3
        assert ctl.backlog(tenant="ghost") == 0
