"""Bundle variants: quantised bundles, provenance, delta archives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.bundle import (
    BundleError,
    BundleIntegrityError,
    load_bundle,
    manifest_sha256,
    quantize_bundle,
    read_manifest,
    save_bundle,
    save_delta_bundle,
    verify_bundle,
)
from repro.serve.registry import ModelRegistry
from tests.serve.conftest import make_blobs


@pytest.fixture()
def float_bundle(packed_bundle):
    return load_bundle(packed_bundle)


class TestQuantizeBundle:
    def test_manifest_records_variant_and_parent(self, float_bundle,
                                                 packed_bundle):
        qb = quantize_bundle(float_bundle, version="1-int8")
        manifest = qb.manifest
        assert manifest.variant == "int8"
        assert manifest.version == "1-int8"
        assert manifest.parent["ref"] == "blobs@1"
        assert manifest.parent["manifest_sha256"] == manifest_sha256(
            float_bundle.manifest
        )
        quant = manifest.quantization
        assert quant["scheme"] == "symmetric-per-output-channel"
        assert quant["qmax"] == 127
        assert len(quant["layers"]) > 0

    def test_round_trip_and_prediction_parity(self, float_bundle, tmp_path):
        X, _ = make_blobs()
        qb = quantize_bundle(float_bundle, version="1-int8")
        path = tmp_path / "int8.zip"
        save_bundle(qb, path)
        loaded = load_bundle(path)
        assert loaded.manifest.variant == "int8"
        agree = np.mean(loaded.predict(X) == float_bundle.predict(X))
        assert agree >= 0.95
        # fallback classifier rides along unchanged
        assert loaded.classifier is not None

    def test_quantised_bundle_serialisation_is_stable(self, float_bundle,
                                                      tmp_path):
        X, _ = make_blobs()
        qb = quantize_bundle(float_bundle, version="1-int8")
        reference = qb.predict(X)
        path = tmp_path / "int8.zip"
        save_bundle(qb, path)
        loaded = load_bundle(path)
        np.testing.assert_array_equal(loaded.predict(X), reference)

    def test_distilled_variant_label(self, float_bundle):
        qb = quantize_bundle(float_bundle, version="2", variant="distilled-int8")
        assert qb.manifest.variant == "distilled-int8"

    def test_unknown_variant_rejected(self, float_bundle):
        with pytest.raises(BundleError, match="variant"):
            quantize_bundle(float_bundle, version="2", variant="float16")

    def test_cnn_less_bundle_rejected(self, packed_classifier_bundle):
        bundle = load_bundle(packed_classifier_bundle)
        with pytest.raises(BundleError, match="no CNN"):
            quantize_bundle(bundle, version="2")

    def test_float_manifest_has_no_variant_keys(self, packed_bundle):
        # float32 stays the implicit default: golden manifests unchanged
        manifest = read_manifest(packed_bundle)
        payload = manifest.to_dict()
        for key in ("variant", "quantization", "parent", "delta_base"):
            assert key not in payload


class TestDeltaBundles:
    def _pair(self, float_bundle, tmp_path):
        """(parent path+manifest, derived bundle) helper."""
        parent_path = tmp_path / "parent.zip"
        parent_manifest = save_bundle(float_bundle, parent_path)
        qb = quantize_bundle(float_bundle, version="1-int8")
        return parent_path, parent_manifest, qb

    def test_delta_ships_only_changed_members(self, float_bundle, tmp_path):
        parent_path, parent_manifest, qb = self._pair(float_bundle, tmp_path)
        delta_path = tmp_path / "child.delta.zip"
        manifest = save_delta_bundle(qb, delta_path, parent_manifest)
        import zipfile

        with zipfile.ZipFile(delta_path) as zf:
            shipped = set(zf.namelist())
        # classifier + scaler members are unchanged: parent supplies them
        assert "classifier.json" not in shipped
        assert "cnn.json" in shipped and "cnn_weights.npz" in shipped
        # but the manifest still covers the full member set
        assert set(manifest.members) >= {"classifier.json", "cnn.json"}

    def test_delta_apply_equals_full_bundle_bytes(self, float_bundle,
                                                  tmp_path):
        parent_path, parent_manifest, qb = self._pair(float_bundle, tmp_path)
        delta_path = tmp_path / "child.delta.zip"
        save_delta_bundle(qb, delta_path, parent_manifest)
        full_path = tmp_path / "child.full.zip"
        save_bundle(qb, full_path)
        _, delta_members = verify_bundle(
            delta_path, parent_resolver=lambda ref: parent_path
        )
        _, full_members = verify_bundle(full_path)
        assert delta_members == full_members  # byte-for-byte

    def test_delta_without_resolver_rejected(self, float_bundle, tmp_path):
        _, parent_manifest, qb = self._pair(float_bundle, tmp_path)
        delta_path = tmp_path / "child.delta.zip"
        save_delta_bundle(qb, delta_path, parent_manifest)
        with pytest.raises(BundleIntegrityError, match="parent_resolver"):
            verify_bundle(delta_path)

    def test_wrong_parent_pin_rejected(self, float_bundle, tmp_path):
        parent_path, parent_manifest, qb = self._pair(float_bundle, tmp_path)
        delta_path = tmp_path / "child.delta.zip"
        save_delta_bundle(qb, delta_path, parent_manifest)
        # re-save the parent with different provenance: its manifest (and
        # hash pin) changes even though the members are identical
        float_bundle.manifest.provenance["tampered"] = True
        other_parent = tmp_path / "parent2.zip"
        save_bundle(float_bundle, other_parent)
        with pytest.raises(BundleIntegrityError, match="manifest hash"):
            verify_bundle(delta_path, parent_resolver=lambda ref: other_parent)

    def test_tampered_parent_member_rejected(self, float_bundle, tmp_path):
        # a corrupted parent fails ITS OWN verification during resolution
        parent_dir = tmp_path / "parent-dir"
        parent_manifest = save_bundle(float_bundle, parent_dir)
        qb = quantize_bundle(float_bundle, version="1-int8")
        delta_path = tmp_path / "child.delta.zip"
        save_delta_bundle(qb, delta_path, parent_manifest)
        member = parent_dir / "classifier.json"
        member.write_bytes(member.read_bytes() + b" ")
        with pytest.raises(BundleIntegrityError, match="integrity"):
            verify_bundle(delta_path, parent_resolver=lambda ref: parent_dir)

    def test_delta_loads_through_registry(self, float_bundle, tmp_path):
        X, _ = make_blobs()
        parent_path, parent_manifest, qb = self._pair(float_bundle, tmp_path)
        delta_path = tmp_path / "child.delta.zip"
        save_delta_bundle(qb, delta_path, parent_manifest)
        registry = ModelRegistry()
        registry.register(parent_path)
        name, version = registry.register(delta_path)
        assert (name, version) == ("blobs", "1-int8")
        loaded = registry.get("blobs@1-int8")
        assert loaded.manifest.variant == "int8"
        assert loaded.predict(X).shape == (X.shape[0],)

    def test_registry_rejects_orphan_delta(self, float_bundle, tmp_path):
        _, parent_manifest, qb = self._pair(float_bundle, tmp_path)
        delta_path = tmp_path / "child.delta.zip"
        save_delta_bundle(qb, delta_path, parent_manifest)
        registry = ModelRegistry()
        with pytest.raises(BundleIntegrityError, match="not registered"):
            registry.register(delta_path)

    def test_full_resave_of_delta_loaded_bundle_is_self_contained(
        self, float_bundle, tmp_path
    ):
        parent_path, parent_manifest, qb = self._pair(float_bundle, tmp_path)
        delta_path = tmp_path / "child.delta.zip"
        save_delta_bundle(qb, delta_path, parent_manifest)
        loaded = load_bundle(delta_path, parent_resolver=lambda ref: parent_path)
        resaved = tmp_path / "resaved.zip"
        save_bundle(loaded, resaved)
        # loads without any parent: the delta pin must not carry over
        again = load_bundle(resaved)
        assert not again.manifest.delta_base
