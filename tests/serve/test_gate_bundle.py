"""Gate bundles and the frontend's leakage-scoring endpoint.

The gate bundle reuses the model-bundle container (manifest, per-member
hashes, zip/directory layouts), so it inherits the same trust boundary:
every member hash is verified *before* any JSON is parsed, and a model
loader refuses a gate artifact (and vice versa) instead of guessing.
The frontend answers ``gate`` ops synchronously next to prediction
traffic; these tests drive the full TCP loopback path.
"""

import zipfile

import pytest

from repro.attack.privacy_gate import (
    LOWPASS_OFF,
    DefenseAxes,
    DefenseConfig,
    GateScorer,
    LeakageCell,
    LeakageReport,
)
from repro.serve.bundle import (
    GATE_KIND,
    BundleFormatError,
    BundleIntegrityError,
    ModelBundle,
    load_bundle,
    load_gate_bundle,
    save_bundle,
    save_gate_bundle,
)
from repro.serve.frontend import FrontendClient, ServingFrontend
from repro.serve.registry import ModelRegistry
from repro.serve.server import InferenceServer


def _report() -> LeakageReport:
    axes = DefenseAxes(
        rate_caps_hz=(50.0, 200.0),
        lowpass_hz=(LOWPASS_OFF,),
        noise_rms=(0.0,),
        quant_lsb=(0.0,),
    )
    report = LeakageReport(
        axes=axes,
        scenarios={"emotion": "synthetic"},
        tasks=("emotion",),
        modes=("adaptive",),
        classifiers=("logistic",),
        seed=0,
        noise_seed=0,
        subsample=4,
    )
    for cap, acc in ((50.0, 0.2), (200.0, 0.8)):
        report.cells.append(
            LeakageCell(
                config=DefenseConfig(rate_cap_hz=cap),
                task="emotion",
                mode="adaptive",
                classifier="logistic",
                accuracy=acc,
                chance=0.2,
                n_classes=5,
                n_test=10,
                extraction_rate=1.0,
            )
        )
    return report


@pytest.fixture()
def gate_zip(tmp_path):
    path = tmp_path / "gate.zip"
    save_gate_bundle(_report(), path)
    return path


class TestGateBundleRoundtrip:
    def test_save_load_roundtrip(self, gate_zip):
        manifest, report = load_gate_bundle(gate_zip)
        assert manifest.provenance["kind"] == GATE_KIND
        assert manifest.labels == ["emotion"]
        assert report.tasks == ("emotion",)
        assert len(report.cells) == 2
        assert report.cells[0].accuracy in (0.2, 0.8)

    def test_directory_layout_roundtrip(self, tmp_path):
        path = tmp_path / "gate-dir"
        save_gate_bundle(_report(), path)
        _, report = load_gate_bundle(path)
        assert len(report.cells) == 2

    def test_model_loader_refuses_gate_bundle(self, gate_zip):
        with pytest.raises(BundleFormatError, match="no predictor"):
            load_bundle(gate_zip)

    def test_gate_loader_refuses_model_bundle(self, tmp_path, fitted_logistic):
        bundle = ModelBundle.create(
            "blobs", "1", classifier=fitted_logistic,
            provenance={"source": "tests"},
        )
        path = tmp_path / "model.zip"
        save_bundle(bundle, path)
        with pytest.raises(BundleFormatError, match="not a privacy-gate"):
            load_gate_bundle(path)


class TestGateBundleTampering:
    def test_flipped_member_byte_rejected_before_parsing(self, gate_zip, monkeypatch):
        """Integrity fires before a single byte of gate JSON is parsed."""
        import repro.attack.privacy_gate as gate_mod

        def bomb(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("parsed a tampered gate payload")

        monkeypatch.setattr(gate_mod.LeakageReport, "from_payload", bomb)
        with zipfile.ZipFile(gate_zip) as zf:
            members = {info.filename: zf.read(info) for info in zf.infolist()}
        payload = bytearray(members["gate.json"])
        payload[len(payload) // 2] ^= 0x01
        members["gate.json"] = bytes(payload)
        with zipfile.ZipFile(gate_zip, "w") as zf:
            for name, data in members.items():
                zf.writestr(name, data)
        with pytest.raises(BundleIntegrityError, match="gate.json"):
            load_gate_bundle(gate_zip)

    def test_truncated_directory_member_rejected(self, tmp_path):
        path = tmp_path / "gate-dir"
        save_gate_bundle(_report(), path)
        member = path / "gate.json"
        member.write_bytes(member.read_bytes()[:-12])
        with pytest.raises(BundleIntegrityError, match="gate.json"):
            load_gate_bundle(path)


class TestGateEndpoint:
    def _serve(self, gate):
        server = InferenceServer(ModelRegistry(), gate=gate)
        return server

    def test_scores_through_the_loopback(self, gate_zip):
        _, report = load_gate_bundle(gate_zip)
        with self._serve(GateScorer(report)) as server:
            with ServingFrontend(server, host="127.0.0.1", port=0) as frontend:
                with FrontendClient("127.0.0.1", frontend.port) as client:
                    exact = client.gate_score(
                        rate_cap_hz=200.0, lowpass_hz=LOWPASS_OFF,
                        noise_rms=0.0, quant_lsb=0.0,
                    )
                    interp = client.gate_score(
                        rate_cap_hz=125.0, lowpass_hz=LOWPASS_OFF,
                        noise_rms=0.0, quant_lsb=0.0,
                    )
                    refused = client.gate_score(
                        rate_cap_hz=10.0, lowpass_hz=LOWPASS_OFF,
                        noise_rms=0.0, quant_lsb=0.0,
                    )
        assert exact["status"] == "ok" and exact["exact"]
        assert exact["accuracy"] == pytest.approx(0.8)
        assert interp["status"] == "ok" and not interp["exact"]
        assert interp["accuracy"] == pytest.approx(0.5)
        assert refused["status"] == "refused"
        assert "extrapolation refused" in refused["error"]

    def test_no_gate_loaded_is_an_error_reply(self):
        with self._serve(None) as server:
            with ServingFrontend(server, host="127.0.0.1", port=0) as frontend:
                with FrontendClient("127.0.0.1", frontend.port) as client:
                    reply = client.gate_score(
                        rate_cap_hz=200.0, lowpass_hz=LOWPASS_OFF,
                        noise_rms=0.0, quant_lsb=0.0,
                    )
        assert reply["status"] == "error"
        assert "no privacy gate" in reply["error"]

    def test_malformed_config_is_an_error_reply(self, gate_zip):
        from repro.serve.protocol import encode_message

        _, report = load_gate_bundle(gate_zip)
        with self._serve(GateScorer(report)) as server:
            with ServingFrontend(server, host="127.0.0.1", port=0) as frontend:
                with FrontendClient("127.0.0.1", frontend.port) as client:
                    reply = client._roundtrip(
                        encode_message(
                            {"op": "gate", "id": 1, "config": {"rate_cap_hz": 200.0}}
                        )
                    )
        assert reply["status"] == "error"
        assert "lowpass_hz" in reply["error"]
