"""Canary/shadow rollout: fraction routing, promote, rollback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import metrics, reset_observability
from repro.serve.bundle import load_bundle, quantize_bundle, save_bundle
from repro.serve.registry import ModelRegistry
from repro.serve.server import InferenceServer, ServeError, serve_burst
from tests.serve.conftest import make_blobs


@pytest.fixture()
def two_version_registry(tmp_path, packed_bundle):
    """blobs@1 (float32, default) and blobs@2-int8 (quantised candidate)."""
    float_bundle = load_bundle(packed_bundle)
    qb = quantize_bundle(float_bundle, version="2-int8")
    q_path = tmp_path / "blobs-2-int8.zip"
    save_bundle(qb, q_path)
    registry = ModelRegistry()
    registry.register(packed_bundle)
    registry.register(q_path)
    registry.set_default("blobs", "1")
    return registry


def _burst(server, n, seed=0):
    X, _ = make_blobs(n_per_class=max(2, n // 3 + 1), seed=seed)
    rows = [X[i % X.shape[0]] for i in range(n)]
    return serve_burst(server, rows)


class TestCanaryRouting:
    def test_fraction_split_is_exact(self, two_version_registry):
        reset_observability()
        with InferenceServer(
            two_version_registry, model="blobs", max_batch=16
        ) as server:
            server.set_canary("blobs", "2-int8", fraction=0.25)
            results = _burst(server, 200)
        assert all(r.ok for r in results)
        routed = [r for r in results if r.model == "blobs@2-int8"]
        assert len(routed) == 50  # counter split: exactly floor(c * f)
        per_version = metrics().counter_group(
            "serve.version.responses", "model"
        )
        assert per_version["blobs@2-int8"] == 50
        assert per_version["blobs@1"] == 150

    def test_pinned_refs_are_never_rerouted(self, two_version_registry):
        reset_observability()
        with InferenceServer(
            two_version_registry, model="blobs", max_batch=8
        ) as server:
            server.set_canary("blobs", "2-int8", fraction=1.0)
            X, _ = make_blobs(n_per_class=2)
            pinned = server.submit_features(X[0], model="blobs@1").result(10.0)
            bare = server.submit_features(X[0]).result(10.0)
        assert pinned.model == "blobs@1"
        assert bare.model == "blobs@2-int8"

    def test_canary_predictions_stay_correct(self, two_version_registry,
                                             packed_bundle):
        reset_observability()
        bundle = load_bundle(packed_bundle)
        X, _ = make_blobs(n_per_class=10, seed=3)
        expected = bundle.predict(X)
        with InferenceServer(
            two_version_registry, model="blobs", max_batch=16
        ) as server:
            server.set_canary("blobs", "2-int8", fraction=0.5)
            results = serve_burst(server, list(X))
        labels = np.array([r.label for r in results])
        assert np.mean(labels == expected) >= 0.95

    def test_unknown_candidate_rejected_up_front(self, two_version_registry):
        with InferenceServer(two_version_registry, model="blobs") as server:
            with pytest.raises(KeyError, match="unknown bundle"):
                server.set_canary("blobs", "99", fraction=0.5)

    def test_invalid_fraction_rejected(self, two_version_registry):
        with InferenceServer(two_version_registry, model="blobs") as server:
            with pytest.raises(ValueError, match="fraction"):
                server.set_canary("blobs", "2-int8", fraction=0.0)
            with pytest.raises(ValueError, match="fraction"):
                server.set_canary("blobs", "2-int8", fraction=1.5)


class TestShadowMode:
    def test_shadow_counts_agreement_without_routing(self,
                                                     two_version_registry):
        reset_observability()
        with InferenceServer(
            two_version_registry, model="blobs", max_batch=16
        ) as server:
            server.set_canary("blobs", "2-int8", fraction=0.0, shadow=True)
            results = _burst(server, 60)
        # every client answer came from the default version
        assert all(r.model == "blobs" for r in results)
        agree = metrics().counter_value(
            "serve.shadow.agree", model="blobs@2-int8"
        )
        disagree = metrics().counter_value(
            "serve.shadow.disagree", model="blobs@2-int8"
        )
        assert agree + disagree == 60
        assert agree >= 0.9 * 60  # int8 vs float argmax agreement

    def test_shadow_status_reports_no_routing(self, two_version_registry):
        with InferenceServer(
            two_version_registry, model="blobs", max_batch=8
        ) as server:
            server.set_canary("blobs", "2-int8", fraction=0.3, shadow=True)
            _burst(server, 20)
            status = server.canary_status("blobs")
        assert status["shadow"] is True
        assert status["routed"] == 0


class TestPromoteRollback:
    def test_promote_flips_default_and_clears_canary(self,
                                                     two_version_registry):
        reset_observability()
        with InferenceServer(
            two_version_registry, model="blobs", max_batch=8
        ) as server:
            server.set_canary("blobs", "2-int8", fraction=0.2)
            promoted = server.promote_canary("blobs")
            assert promoted == "2-int8"
            assert server.canary_status("blobs") is None
            assert two_version_registry.default_version("blobs") == "2-int8"
            # bare-name traffic now lands on the promoted version
            results = _burst(server, 10)
        per_version = metrics().counter_group(
            "serve.version.responses", "model"
        )
        assert per_version.get("blobs@2-int8", 0) == 10
        assert all(r.ok for r in results)

    def test_rollback_keeps_prior_default_and_drops_nothing(
        self, two_version_registry
    ):
        reset_observability()
        with InferenceServer(
            two_version_registry, model="blobs", max_batch=8
        ) as server:
            server.set_canary("blobs", "2-int8", fraction=0.5)
            before = _burst(server, 40)
            restored = server.rollback_canary("blobs")
            assert restored == "1"
            assert server.canary_status("blobs") is None
            after = _burst(server, 40, seed=1)
        assert all(r.ok for r in before)
        assert all(r.ok for r in after)
        # post-rollback traffic goes entirely to the prior default
        assert all(r.model == "blobs" for r in after)
        assert (
            server.requests_answered == server.requests_accepted == 80
        )

    def test_promote_without_canary_raises(self, two_version_registry):
        with InferenceServer(two_version_registry, model="blobs") as server:
            with pytest.raises(ServeError, match="no canary"):
                server.promote_canary("blobs")
            with pytest.raises(ServeError, match="no canary"):
                server.rollback_canary("blobs")
