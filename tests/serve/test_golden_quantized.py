"""Golden-parity guard for the quantised bundle variant.

A committed JSON fixture pins the int8 variant of the deterministic
golden pipeline: its probe predictions, its probe probabilities, and
its training-set accuracy relative to the float32 parent. Any drift in
the weight codec (scales, rounding), the quantised forward kernels or
the variant pack/load path fails here first — the float32 golden
fixture (test_golden_bundle.py) stays byte-identical on its own.

Regenerate (after an *intentional* numerics change) with::

    PYTHONPATH=src python tests/serve/test_golden_quantized.py --regenerate
"""

import json
from pathlib import Path

import numpy as np

from repro.serve.bundle import load_bundle, quantize_bundle, save_bundle
from tests.serve.test_golden_bundle import _build_bundle, _probe_rows, _train_data

FIXTURE = Path(__file__).parent / "fixtures" / "golden_quantized_predictions.json"


def _build_quantized():
    return quantize_bundle(_build_bundle(), version="1-int8")


def _payload(qbundle, float_bundle):
    probes = _probe_rows()
    X, y = _train_data()
    return {
        "variant": qbundle.manifest.variant,
        "labels": [str(label) for label in qbundle.labels],
        "predicted": [str(label) for label in qbundle.predict(probes)],
        "cnn_proba": qbundle.predict_proba_with("cnn", probes).tolist(),
        "train_accuracy": float(np.mean(qbundle.predict(X) == y)),
        "float_train_accuracy": float(np.mean(float_bundle.predict(X) == y)),
    }


class TestGoldenQuantizedParity:
    def test_fixture_exists(self):
        assert FIXTURE.exists(), (
            f"golden fixture missing at {FIXTURE}; regenerate with "
            f"`PYTHONPATH=src python {__file__} --regenerate`"
        )

    def test_packed_variant_matches_in_memory_bitwise(self, tmp_path):
        """load(save(quantized)) answers byte-identically to the original."""
        qbundle = _build_quantized()
        path = tmp_path / "golden-int8.zip"
        save_bundle(qbundle, path)
        loaded = load_bundle(path)
        probes = _probe_rows()
        assert np.array_equal(
            qbundle.predict_proba_with("cnn", probes),
            loaded.predict_proba_with("cnn", probes),
        )
        assert list(qbundle.predict(probes)) == list(loaded.predict(probes))

    def test_loaded_variant_reproduces_fixture(self, tmp_path):
        golden = json.loads(FIXTURE.read_text())
        qbundle = _build_quantized()
        path = tmp_path / "golden-int8.zip"
        save_bundle(qbundle, path)
        got = _payload(load_bundle(path), _build_bundle())
        assert got["variant"] == golden["variant"] == "int8"
        assert got["labels"] == golden["labels"]
        assert got["predicted"] == golden["predicted"]
        np.testing.assert_allclose(
            got["cnn_proba"], golden["cnn_proba"], rtol=1e-6,
            err_msg="quantised CNN predictions drifted",
        )
        assert got["train_accuracy"] == golden["train_accuracy"]

    def test_quantised_accuracy_within_one_point_of_float(self):
        """The pinned int8 accuracy sits within 1pp of the float parent."""
        golden = json.loads(FIXTURE.read_text())
        assert (
            golden["train_accuracy"] >= golden["float_train_accuracy"] - 0.01
        )


def _regenerate() -> None:
    import tempfile

    qbundle = _build_quantized()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "golden-int8.zip"
        save_bundle(qbundle, path)
        payload = _payload(load_bundle(path), _build_bundle())
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"wrote {FIXTURE}: predicted={payload['predicted']} "
        f"acc={payload['train_accuracy']:.4f} "
        f"(float {payload['float_train_accuracy']:.4f})"
    )


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
