"""Fault injection on bundle artifacts: tampering must be rejected loudly
before any model is instantiated (mirrors tests/attack/test_engine_faults.py).
"""

import json
import zipfile

import pytest

from repro.serve.bundle import (
    BundleError,
    BundleFormatError,
    BundleIntegrityError,
    ModelBundle,
    load_bundle,
    save_bundle,
)


def _flip_byte(path, offset=-10):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


class TestTampering:
    @pytest.mark.parametrize(
        "member", ["classifier.json", "cnn.json", "cnn_weights.npz"]
    )
    def test_flipped_byte_rejected(self, packed_bundle, member):
        """Any flipped byte in any hashed member fails the integrity check."""
        _flip_byte(packed_bundle / member)
        with pytest.raises(BundleIntegrityError, match=member):
            load_bundle(packed_bundle)

    def test_truncated_member_rejected(self, packed_bundle):
        weights = packed_bundle / "cnn_weights.npz"
        weights.write_bytes(weights.read_bytes()[:-64])
        with pytest.raises(BundleIntegrityError, match="cnn_weights.npz"):
            load_bundle(packed_bundle)

    def test_tamper_never_instantiates_a_model(self, packed_bundle, monkeypatch):
        """The hash check fires before any deserialiser runs."""
        import repro.serve.bundle as bundle_mod

        def bomb(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("model deserialiser ran on a tampered bundle")

        monkeypatch.setattr(bundle_mod, "classifier_from_dict", bomb)
        monkeypatch.setattr(bundle_mod, "_cnn_from_members", bomb)
        _flip_byte(packed_bundle / "classifier.json")
        with pytest.raises(BundleIntegrityError):
            load_bundle(packed_bundle)

    def test_zip_tamper_rejected(self, packed_classifier_bundle):
        """Flipping a byte inside the zip's member payload is caught."""
        with zipfile.ZipFile(packed_classifier_bundle) as zf:
            members = {info.filename: zf.read(info) for info in zf.infolist()}
        payload = bytearray(members["classifier.json"])
        payload[len(payload) // 2] ^= 0x01
        members["classifier.json"] = bytes(payload)
        with zipfile.ZipFile(packed_classifier_bundle, "w") as zf:
            for name, data in members.items():
                zf.writestr(name, data)
        with pytest.raises(BundleIntegrityError, match="classifier.json"):
            load_bundle(packed_classifier_bundle)

    def test_smuggled_member_rejected(self, packed_bundle):
        (packed_bundle / "extra.json").write_text("{}")
        with pytest.raises(BundleIntegrityError, match="undeclared"):
            load_bundle(packed_bundle)

    def test_missing_member_rejected(self, packed_bundle):
        (packed_bundle / "classifier.json").unlink()
        with pytest.raises(BundleIntegrityError, match="missing members"):
            load_bundle(packed_bundle)


def _rewrite_manifest(path, mutate):
    manifest = json.loads((path / "manifest.json").read_text())
    mutate(manifest)
    (path / "manifest.json").write_text(json.dumps(manifest))


class TestFormatRejection:
    def test_unknown_format_version(self, packed_bundle):
        _rewrite_manifest(
            packed_bundle, lambda m: m.update(format_version=999)
        )
        with pytest.raises(BundleFormatError, match="format version 999"):
            load_bundle(packed_bundle)

    def test_unknown_classifier_kind(self, tmp_path, fitted_logistic):
        """A manifest-consistent artifact with a hostile kind tag still
        cannot instantiate anything: the kind dispatch refuses it."""
        bundle = ModelBundle.create("x", "1", classifier=fitted_logistic)
        path = tmp_path / "hostile"
        save_bundle(bundle, path)
        # Rewrite the member with a hostile kind AND fix up its hash, so
        # only the kind dispatch (not the integrity check) can stop it.
        payload = json.loads((path / "classifier.json").read_text())
        payload["kind"] = "os.system"
        member_bytes = json.dumps(payload).encode()
        (path / "classifier.json").write_bytes(member_bytes)
        import hashlib

        _rewrite_manifest(
            path,
            lambda m: m["members"]["classifier.json"].update(
                sha256=hashlib.sha256(member_bytes).hexdigest(),
                bytes=len(member_bytes),
            ),
        )
        with pytest.raises(BundleFormatError, match="os.system"):
            load_bundle(path)

    def test_unknown_cnn_kind(self, packed_bundle):
        payload = json.loads((packed_bundle / "cnn.json").read_text())
        payload["kind"] = "arbitrary_code"
        member_bytes = json.dumps(payload).encode()
        (packed_bundle / "cnn.json").write_bytes(member_bytes)
        import hashlib

        _rewrite_manifest(
            packed_bundle,
            lambda m: m["members"]["cnn.json"].update(
                sha256=hashlib.sha256(member_bytes).hexdigest(),
                bytes=len(member_bytes),
            ),
        )
        with pytest.raises(BundleFormatError, match="arbitrary_code"):
            load_bundle(packed_bundle)

    def test_missing_manifest(self, packed_bundle):
        (packed_bundle / "manifest.json").unlink()
        with pytest.raises(BundleIntegrityError, match="manifest.json"):
            load_bundle(packed_bundle)

    def test_nonexistent_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path / "nowhere")

    def test_bundle_error_is_value_error(self):
        """Callers can catch the whole family as ValueError."""
        assert issubclass(BundleError, ValueError)
        assert issubclass(BundleIntegrityError, BundleError)
        assert issubclass(BundleFormatError, BundleError)
