"""InferenceServer behaviour: batching transparency, timeouts,
backpressure, graceful degrade and fault isolation
(mirrors tests/attack/test_engine_faults.py for the serving layer).
"""

import threading

import numpy as np
import pytest

from repro.obs import metrics, reset_observability, tracer
from repro.parallel import ExecutorPool
from repro.serve.bundle import load_bundle
from repro.serve.registry import ModelRegistry
from repro.serve.server import (
    InferenceServer,
    ServeError,
    ServerOverloaded,
    ServerStopped,
    serve_burst,
)

from tests.serve.conftest import make_blobs


@pytest.fixture()
def registry(packed_bundle):
    reg = ModelRegistry()
    reg.register(packed_bundle)
    return reg


@pytest.fixture()
def clf_registry(packed_classifier_bundle):
    reg = ModelRegistry()
    reg.register(packed_classifier_bundle)
    return reg


class TestBatchingTransparency:
    def test_batched_equals_serial_128_burst(self, registry, packed_bundle):
        """A 128-request burst served batched answers identically to
        serial single-request inference (the acceptance criterion):
        labels are exactly equal; probabilities agree to within BLAS
        batch-shape noise (different batch sizes take different matmul
        blocking paths, so the last ULP can differ)."""
        reset_observability()
        X, _ = make_blobs(n_per_class=43, seed=9)
        rows = list(X[:128])
        bundle = load_bundle(packed_bundle)
        expected = bundle.predict_proba(np.vstack(rows))

        with InferenceServer(
            registry, model="blobs", max_batch=32, max_linger_s=0.005
        ) as server:
            batched = serve_burst(server, rows)
        with InferenceServer(
            registry, model="blobs", max_batch=1, max_linger_s=0.0
        ) as server:
            serial = [server.predict(row) for row in rows]

        assert len(batched) == 128
        assert all(r.ok for r in batched)
        assert all(r.ok for r in serial)
        assert [b.label for b in batched] == [s.label for s in serial]
        for i, (b, s) in enumerate(zip(batched, serial)):
            np.testing.assert_allclose(b.proba, s.proba, rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(
                b.proba, expected[i], rtol=1e-9, atol=1e-12
            )
            assert b.used == "cnn"

    def test_batches_actually_form(self, registry):
        X, _ = make_blobs(n_per_class=20, seed=3)
        with InferenceServer(
            registry, model="blobs", max_batch=16, max_linger_s=0.05
        ) as server:
            results = serve_burst(server, list(X[:48]))
            assert all(r.ok for r in results)
            # 48 requests cannot need 48 batches when they linger.
            assert server.batches_run < 48

    def test_window_requests_match_offline_pipeline(self, registry, packed_bundle):
        from repro.attack.features import extract_features

        rng = np.random.default_rng(0)
        fs = 500.0
        windows = [rng.normal(size=256) for _ in range(6)]
        bundle = load_bundle(packed_bundle)
        rows = np.vstack(
            [np.nan_to_num(extract_features(w, fs), nan=0.0) for w in windows]
        )
        expected = bundle.predict_proba(rows)
        with InferenceServer(registry, model="blobs") as server:
            futures = [server.submit_window(w, fs) for w in windows]
            results = [f.result(timeout=30.0) for f in futures]
        assert all(r.ok for r in results)
        for i, r in enumerate(results):
            np.testing.assert_allclose(
                r.proba, expected[i], rtol=1e-9, atol=1e-12
            )

    def test_mixed_models_in_one_batch(self, packed_bundle, packed_classifier_bundle):
        reg = ModelRegistry()
        reg.register(packed_bundle)
        reg.register(packed_classifier_bundle)
        X, _ = make_blobs(n_per_class=4, seed=2)
        with InferenceServer(
            reg, max_batch=32, max_linger_s=0.05,
            pool=ExecutorPool(n_jobs=2, executor="thread"),
        ) as server:
            futures = [
                server.submit_features(
                    row, model="blobs" if i % 2 else "blobs-clf"
                )
                for i, row in enumerate(X)
            ]
            results = [f.result(timeout=30.0) for f in futures]
        assert all(r.ok for r in results)
        assert {r.model for r in results} == {"blobs", "blobs-clf"}


class TestValidationAndLifecycle:
    def test_submit_before_start_raises(self, registry):
        server = InferenceServer(registry, model="blobs")
        with pytest.raises(ServerStopped):
            server.submit_features(np.zeros(24))

    def test_submit_after_stop_raises(self, registry):
        server = InferenceServer(registry, model="blobs").start()
        server.stop()
        with pytest.raises(ServerStopped):
            server.submit_features(np.zeros(24))

    def test_no_default_model_raises(self, registry):
        with InferenceServer(registry) as server:
            with pytest.raises(ServeError, match="no model"):
                server.submit_features(np.zeros(24))

    def test_bad_payload_shapes_rejected_at_submit(self, registry):
        with InferenceServer(registry, model="blobs") as server:
            with pytest.raises(ValueError, match="1-D feature vector"):
                server.submit_features(np.zeros((2, 24)))
            with pytest.raises(ValueError, match=">= 4 samples"):
                server.submit_window(np.zeros(2), fs=500.0)
            with pytest.raises(ValueError, match="fs must be positive"):
                server.submit_window(np.zeros(64), fs=0.0)

    def test_process_pool_rejected(self, registry):
        pool = ExecutorPool(n_jobs=2, executor="process")
        try:
            with pytest.raises(ValueError, match="serial or thread"):
                InferenceServer(registry, pool=pool)
        finally:
            pool.close()

    def test_constructor_validation(self, registry):
        with pytest.raises(ValueError):
            InferenceServer(registry, max_batch=0)
        with pytest.raises(ValueError):
            InferenceServer(registry, max_linger_s=-1)
        with pytest.raises(ValueError):
            InferenceServer(registry, max_queue=0)


class TestErrorValues:
    """Failures come back as ServeResult values; the server stays up."""

    def test_unknown_model_is_error_value(self, registry):
        with InferenceServer(registry, model="blobs") as server:
            bad = server.submit_features(np.zeros(24), model="nope").result(10.0)
            assert bad.status == "error"
            assert "unknown bundle" in bad.error
            # The server keeps serving afterwards.
            X, _ = make_blobs(n_per_class=1)
            assert server.predict(X[0]).ok

    def test_wrong_feature_width_is_error_value(self, registry):
        with InferenceServer(registry, model="blobs") as server:
            bad = server.submit_features(np.zeros(7)).result(10.0)
            assert bad.status == "error"
            assert "7 entries" in bad.error
            X, _ = make_blobs(n_per_class=1)
            good = server.predict(X[0])
            assert good.ok

    def test_expired_deadline_is_timeout_value(self, registry):
        reset_observability()
        with InferenceServer(registry, model="blobs") as server:
            result = server.submit_features(
                np.zeros(24), timeout_s=0.0
            ).result(10.0)
        assert result.status == "timeout"
        assert result.ok is False
        assert "deadline" in result.error
        assert metrics().counter_total("serve.timeouts") == 1

    def test_backpressure_rejects_when_full(self, clf_registry):
        """A full bounded queue rejects immediately instead of buffering."""
        reset_observability()
        release = threading.Event()
        bundle = clf_registry.get("blobs-clf")
        original = bundle.classifier.predict_proba

        def blocked(X):
            release.wait(timeout=30.0)
            return original(X)

        bundle.classifier.predict_proba = blocked
        X, _ = make_blobs(n_per_class=4)
        server = InferenceServer(
            clf_registry, model="blobs-clf", max_batch=1,
            max_linger_s=0.0, max_queue=2,
        ).start()
        try:
            futures = [server.submit_features(X[0])]  # occupies the batcher
            attempts = 0
            # Fill the queue behind the blocked batch.
            while attempts < 50:
                try:
                    futures.append(server.submit_features(X[0]))
                except ServerOverloaded:
                    break
                attempts += 1
            else:
                pytest.fail("queue never filled")
            assert metrics().counter_value(
                "serve.rejected", reason="overloaded"
            ) >= 1
            release.set()
            results = [f.result(timeout=30.0) for f in futures]
            assert all(r.ok for r in results)  # accepted work still served
        finally:
            release.set()
            server.stop()
            bundle.classifier.predict_proba = original


class TestGracefulDegrade:
    def test_cnn_fault_degrades_to_classifier(self, registry, packed_bundle):
        """A faulting CNN answers through the fallback feature classifier."""
        reset_observability()
        bundle = registry.get("blobs")
        expected = None

        def bomb(X):
            raise RuntimeError("conv kernel fell over")

        original = bundle.cnn.predict_proba
        bundle.cnn.predict_proba = bomb
        try:
            X, _ = make_blobs(n_per_class=4, seed=11)
            in_memory = load_bundle(packed_bundle)
            expected = in_memory.predict_proba_with("classifier", X)
            with InferenceServer(
                registry, model="blobs", max_batch=16, max_linger_s=0.02
            ) as server:
                results = serve_burst(server, list(X))
        finally:
            bundle.cnn.predict_proba = original
        assert all(r.ok for r in results)
        assert all(r.used == "classifier" for r in results)
        for i, r in enumerate(results):
            np.testing.assert_allclose(
                r.proba, expected[i], rtol=1e-9, atol=1e-12
            )
        assert metrics().counter_total("serve.fallbacks") == len(results)

    def test_poison_request_isolated_mid_batch(self, clf_registry):
        """One poison request gets an error value; its batchmates answer,
        and the server stays up (exactly-once, no crash)."""
        reset_observability()
        bundle = clf_registry.get("blobs-clf")
        original = bundle.classifier.predict_proba

        def fragile(X):
            if np.any(np.abs(X) > 1e6):
                raise RuntimeError("activation overflow")
            return original(X)

        bundle.classifier.predict_proba = fragile
        try:
            X, _ = make_blobs(n_per_class=4, seed=13)
            rows = list(X[:7])
            rows.insert(3, np.full(24, 1e9))  # the poison request
            with InferenceServer(
                clf_registry, model="blobs-clf", max_batch=8, max_linger_s=0.05
            ) as server:
                results = serve_burst(server, rows)
                # Server is still healthy for the next request.
                assert server.predict(X[0]).ok
        finally:
            bundle.classifier.predict_proba = original
        assert len(results) == 8
        assert results[3].status == "error"
        assert "activation overflow" in results[3].error
        good = [r for i, r in enumerate(results) if i != 3]
        assert all(r.ok for r in good)
        assert metrics().counter_total("serve.row_isolation") >= 1

    def test_internal_batch_failure_answers_everyone(self, clf_registry):
        """Even a bug in batch assembly answers every future (error value)."""
        server = InferenceServer(clf_registry, model="blobs-clf")

        def explode(batch):
            raise RuntimeError("scheduler bug")

        server._run_batch = explode
        server.start()
        try:
            result = server.submit_features(np.zeros(24)).result(10.0)
        finally:
            server.stop()
        assert result.status == "error"
        assert "internal batch failure" in result.error


class TestObservability:
    def test_traces_and_counters_balance(self, registry):
        """Every request leaves exactly one serve.request span and one
        serve.responses count; batch spans cover every request."""
        reset_observability()
        X, _ = make_blobs(n_per_class=8, seed=4)
        rows = list(X)
        with InferenceServer(
            registry, model="blobs", max_batch=8, max_linger_s=0.02
        ) as server:
            results = serve_burst(server, rows)
            accepted = server.requests_accepted
            answered = server.requests_answered
        assert all(r.ok for r in results)
        assert accepted == answered == len(rows)
        spans = tracer().find("serve.request")
        assert len(spans) == len(rows)
        assert {s.labels["status"] for s in spans} == {"ok"}
        batch_spans = tracer().find("serve.batch")
        assert sum(s.labels["n"] for s in batch_spans) == len(rows)
        reg = metrics()
        assert reg.counter_value("serve.responses", status="ok") == len(rows)
        assert reg.counter_total("serve.requests") == len(rows)
        assert reg.counter_total("serve.batches") == len(batch_spans)
        assert reg.timer("serve.request", status="ok", model="blobs").count == len(rows)

    def test_failed_requests_balance_too(self, registry):
        reset_observability()
        with InferenceServer(registry, model="blobs") as server:
            server.submit_features(np.zeros(24), model="nope").result(10.0)
            server.submit_features(np.zeros(3)).result(10.0)
        spans = tracer().find("serve.request")
        assert len(spans) == 2
        assert {s.labels["status"] for s in spans} == {"error"}
        assert metrics().counter_value("serve.responses", status="error") == 2
