"""Bundle round trips: save → load preserves predictions bitwise."""

import json

import numpy as np
import pytest

from repro.serve.bundle import (
    BUNDLE_FORMAT_VERSION,
    BundleError,
    ModelBundle,
    load_bundle,
    save_bundle,
    verify_bundle,
)

from tests.serve.conftest import make_blobs


class TestRoundTrip:
    @pytest.mark.parametrize("as_zip", [False, True], ids=["dir", "zip"])
    def test_full_bundle_round_trip(
        self, tmp_path, fitted_logistic, fitted_cnn, blob_data, as_zip
    ):
        X, _ = blob_data
        bundle = ModelBundle.create(
            "blobs", "2", classifier=fitted_logistic, cnn=fitted_cnn
        )
        path = tmp_path / ("b.zip" if as_zip else "b")
        manifest = save_bundle(bundle, path)
        assert manifest.ref == "blobs@2"
        assert manifest.format_version == BUNDLE_FORMAT_VERSION
        loaded = load_bundle(path)
        # Bitwise parity of the full pipeline, both predictors.
        assert np.array_equal(
            bundle.predict_proba_with("cnn", X),
            loaded.predict_proba_with("cnn", X),
        )
        assert np.array_equal(
            bundle.predict_proba_with("classifier", X),
            loaded.predict_proba_with("classifier", X),
        )
        assert np.array_equal(bundle.predict(X), loaded.predict(X))

    def test_classifier_only_round_trip(
        self, packed_classifier_bundle, fitted_logistic, blob_data
    ):
        X, _ = blob_data
        loaded = load_bundle(packed_classifier_bundle)
        assert loaded.cnn is None
        assert np.array_equal(
            fitted_logistic.predict_proba(X), loaded.predict_proba(X)
        )

    def test_manifest_contents(self, packed_bundle):
        manifest, members = verify_bundle(packed_bundle)
        assert manifest.labels == ["emo0", "emo1", "emo2"]
        assert len(manifest.feature_schema) == 24
        assert manifest.provenance["source"] == "tests"
        assert set(manifest.members) == {
            "classifier.json", "cnn.json", "cnn_weights.npz"
        }
        assert set(members) == set(manifest.members)
        # The manifest is valid JSON on disk with every member hashed.
        raw = json.loads((packed_bundle / "manifest.json").read_text())
        for meta in raw["members"].values():
            assert len(meta["sha256"]) == 64
            assert meta["bytes"] > 0

    def test_cnn_policy_recorded(self, packed_bundle):
        manifest, _ = verify_bundle(packed_bundle)
        assert manifest.nn_policy["compute_dtype"] in ("float64", "float32")
        assert manifest.nn_policy["conv_kernel"] in ("gemm", "reference")


class TestCreateValidation:
    def test_empty_bundle_rejected(self):
        with pytest.raises(BundleError, match="needs a classifier"):
            ModelBundle.create("x", "1")

    def test_unfitted_part_rejected(self):
        from repro.ml.logistic import LogisticRegression

        with pytest.raises(BundleError, match="not fitted"):
            ModelBundle.create("x", "1", classifier=LogisticRegression())

    def test_label_disagreement_rejected(self, fitted_cnn):
        from repro.ml.logistic import LogisticRegression

        X, y = make_blobs(k=2, seed=5)
        other = LogisticRegression().fit(X, y)
        with pytest.raises(BundleError, match="disagree on the label map"):
            ModelBundle.create("x", "1", classifier=other, cnn=fitted_cnn)

    def test_scaler_member_round_trip(self, tmp_path, fitted_logistic, blob_data):
        from repro.ml.preprocessing import StandardScaler

        X, _ = blob_data
        scaler = StandardScaler().fit(X)
        bundle = ModelBundle.create(
            "scaled", "1", classifier=fitted_logistic, scaler=scaler
        )
        path = tmp_path / "scaled"
        save_bundle(bundle, path)
        loaded = load_bundle(path)
        assert np.array_equal(loaded.scaler.mean_, scaler.mean_)
        assert np.array_equal(loaded.scaler.std_, scaler.std_)
        assert np.array_equal(
            bundle.predict_proba(X), loaded.predict_proba(X)
        )
