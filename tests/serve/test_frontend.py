"""Network front-end: e2e round trips, shedding, isolation, drain."""

from __future__ import annotations

import asyncio
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.obs import metrics, reset_observability
from repro.serve import (
    AsyncFrontendClient,
    FrontendClient,
    InferenceServer,
    ModelRegistry,
    ServingFrontend,
    TenantConfig,
)
from repro.serve.protocol import FrameDecoder, encode_message

from tests.serve.conftest import make_blobs


@pytest.fixture()
def clf_registry(packed_classifier_bundle):
    registry = ModelRegistry()
    registry.register(packed_classifier_bundle)
    registry.get("blobs-clf")
    return registry


@pytest.fixture()
def served(clf_registry):
    """A started server + frontend with generous tenant defaults."""
    with InferenceServer(
        clf_registry, model="blobs-clf", max_batch=16, max_linger_s=0.001
    ) as server:
        with ServingFrontend(
            server,
            default_tenant=TenantConfig("default", rate=float("inf"), burst=64.0),
        ) as frontend:
            yield server, frontend


def run_async(coro):
    return asyncio.run(coro)


class TestRoundTrips:
    def test_sync_client_predicts(self, served):
        _, frontend = served
        X, _ = make_blobs(n_per_class=2)
        with FrontendClient("127.0.0.1", frontend.port, tenant="phone-1") as client:
            response = client.predict(X[0])
        assert response["op"] == "result"
        assert response["status"] == "ok"
        assert response["label"].startswith("emo")
        assert len(response["proba"]) == 3
        assert response["latency_s"] > 0

    def test_binary_tensor_request_answers_identically(self, served):
        _, frontend = served
        X, _ = make_blobs(n_per_class=2)
        with FrontendClient("127.0.0.1", frontend.port) as client:
            via_json = client.predict(X[0])
            via_binary = client.predict(X[0], binary=True)
        assert via_binary["label"] == via_json["label"]
        np.testing.assert_allclose(via_binary["proba"], via_json["proba"])

    def test_network_answers_match_direct_serving(self, served):
        """The wire adds transport, never changes predictions."""
        server, frontend = served
        X, _ = make_blobs(n_per_class=4, seed=3)

        async def through_the_wire():
            client = await AsyncFrontendClient(
                "127.0.0.1", frontend.port, tenant="t"
            ).connect()
            try:
                futures = [client.submit(row) for row in X]
                return await asyncio.gather(*futures)
            finally:
                await client.close()

        responses = run_async(through_the_wire())
        direct = [server.predict(row) for row in X]
        assert [r["label"] for r in responses] == [d.label for d in direct]

    def test_raw_window_request_served(self, served):
        _, frontend = served
        rng = np.random.default_rng(0)
        window = rng.normal(size=512)

        async def send_window():
            client = await AsyncFrontendClient("127.0.0.1", frontend.port).connect()
            try:
                return await client.submit(window=window, fs=500.0, binary=True)
            finally:
                await client.close()

        response = run_async(send_window())
        assert response["status"] == "ok"

    def test_ping_pong(self, served):
        _, frontend = served
        with FrontendClient("127.0.0.1", frontend.port) as client:
            assert client.ping()["op"] == "pong"

    def test_backfill_lane_served_when_idle(self, served):
        _, frontend = served
        X, _ = make_blobs(n_per_class=1)
        with FrontendClient("127.0.0.1", frontend.port) as client:
            response = client.predict(X[0], lane="backfill")
        assert response["status"] == "ok"


class TestBadRequests:
    def test_unknown_op_answers_error_and_connection_survives(self, served):
        _, frontend = served
        with FrontendClient("127.0.0.1", frontend.port) as client:
            response = client._roundtrip(
                encode_message({"op": "transmogrify", "id": 1})
            )
            assert response["op"] == "error"
            assert "transmogrify" in response["error"]
            assert client.ping()["op"] == "pong"  # still alive

    def test_bad_payload_answers_error_result(self, served):
        _, frontend = served
        with FrontendClient("127.0.0.1", frontend.port) as client:
            response = client._roundtrip(
                encode_message(
                    {"op": "predict", "id": 2, "kind": "features", "payload": []}
                )
            )
            assert response["status"] == "error"
            assert client.ping()["op"] == "pong"

    def test_unknown_model_answers_error_value(self, served):
        _, frontend = served
        X, _ = make_blobs(n_per_class=1)
        with FrontendClient("127.0.0.1", frontend.port) as client:
            response = client.predict(X[0], model="ghost@9")
        assert response["status"] == "error"

    def test_unknown_lane_rejected(self, served):
        _, frontend = served
        with FrontendClient("127.0.0.1", frontend.port) as client:
            response = client._roundtrip(
                encode_message(
                    {
                        "op": "predict",
                        "id": 3,
                        "lane": "express",
                        "payload": [1.0],
                    }
                )
            )
        assert response["status"] == "error"
        assert "lane" in response["error"]


class TestConnectionIsolation:
    def _raw_connect(self, port):
        sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
        sock.settimeout(10.0)
        return sock

    def _recv_messages(self, sock):
        decoder = FrameDecoder()
        messages = []
        try:
            while not messages:
                data = sock.recv(65536)
                if not data:
                    break
                messages.extend(decoder.feed(data))
        except socket.timeout:
            pass
        return messages

    def test_garbage_closes_only_the_offending_connection(self, served):
        _, frontend = served
        healthy = FrontendClient("127.0.0.1", frontend.port)
        rogue = self._raw_connect(frontend.port)
        try:
            rogue.sendall(b"\xff" * 64)  # an absurd length prefix
            messages = self._recv_messages(rogue)
            assert messages and messages[0][0]["op"] == "error"
            # The rogue connection is closed by the server...
            assert rogue.recv(65536) == b""
            # ...while the healthy one keeps serving.
            assert healthy.ping()["op"] == "pong"
            X, _ = make_blobs(n_per_class=1)
            assert healthy.predict(X[0])["status"] == "ok"
        finally:
            rogue.close()
            healthy.close()

    def test_oversized_frame_rejected_with_clean_error(self, clf_registry):
        with InferenceServer(
            clf_registry, model="blobs-clf", max_batch=8, max_linger_s=0.001
        ) as server:
            with ServingFrontend(server, max_frame_bytes=1024) as frontend:
                sock = self._raw_connect(frontend.port)
                try:
                    sock.sendall(struct.pack("!I", 1 << 24))
                    messages = self._recv_messages(sock)
                    assert messages
                    assert "exceeds" in messages[0][0]["error"]
                    assert sock.recv(65536) == b""
                finally:
                    sock.close()


class TestLoadShedding:
    def test_rate_limited_tenant_gets_shed_with_retry_hint(self, clf_registry):
        reset_observability()
        with InferenceServer(
            clf_registry, model="blobs-clf", max_batch=8, max_linger_s=0.001
        ) as server:
            with ServingFrontend(
                server,
                tenants=[TenantConfig("greedy", rate=5.0, burst=1.0)],
            ) as frontend:
                X, _ = make_blobs(n_per_class=1)

                async def flood():
                    client = await AsyncFrontendClient(
                        "127.0.0.1", frontend.port, tenant="greedy"
                    ).connect()
                    try:
                        futures = [client.submit(X[0]) for _ in range(6)]
                        return await asyncio.gather(*futures)
                    finally:
                        await client.close()

                responses = run_async(flood())
        statuses = [r["status"] for r in responses]
        assert statuses.count("ok") >= 1  # the burst token
        shed = [r for r in responses if r["status"] == "shed"]
        assert shed, f"nothing shed: {statuses}"
        for response in shed:
            assert response["reason"] == "rate"
            assert 0 < response["retry_after_s"] <= 0.5
        assert (
            metrics().counter_value("frontend.shed", tenant="greedy", reason="rate")
            == len(shed)
        )

    def test_per_tenant_counters_recorded(self, served):
        reset_observability()
        _, frontend = served
        X, _ = make_blobs(n_per_class=1)
        for tenant, n in (("alice", 3), ("bob", 2)):
            with FrontendClient("127.0.0.1", frontend.port, tenant=tenant) as client:
                for _ in range(n):
                    assert client.predict(X[0])["status"] == "ok"
        by_tenant = metrics().counter_group("frontend.requests", "tenant")
        assert by_tenant == {"alice": 3.0, "bob": 2.0}
        answered = metrics().counter_group("frontend.responses", "tenant")
        assert answered == {"alice": 3.0, "bob": 2.0}


class TestDispatchLiveness:
    def test_preempted_backfill_does_not_livelock_the_event_loop(self, clf_registry):
        """Backfill beyond the preemption limit must not starve the loop.

        Regression: with backfill backlogged, realtime idle, and inflight
        pinned between the backfill limit and ``max_inflight`` by a slow
        backend, the dispatch loop used to spin on ``continue`` without
        awaiting — completion callbacks never ran, so inflight never
        dropped and the whole frontend (pings included) froze.
        """
        bundle = clf_registry.get("blobs-clf")
        original = bundle.classifier.predict_proba

        def slow(X):
            time.sleep(0.05)
            return original(X)

        bundle.classifier.predict_proba = slow
        X, _ = make_blobs(n_per_class=1)
        try:
            with InferenceServer(
                clf_registry, model="blobs-clf", max_batch=2, max_linger_s=0.001
            ) as server:
                frontend = ServingFrontend(
                    server,
                    max_inflight=8,
                    backfill_pressure=0.5,
                    default_tenant=TenantConfig(
                        "default", rate=float("inf"), burst=64.0
                    ),
                ).start()
                try:

                    async def flood_backfill():
                        client = await AsyncFrontendClient(
                            "127.0.0.1", frontend.port
                        ).connect()
                        try:
                            futures = [
                                client.submit(X[0], lane="backfill")
                                for _ in range(6)
                            ]
                            responses = await asyncio.wait_for(
                                asyncio.gather(*futures), timeout=30.0
                            )
                            pong = await asyncio.wait_for(
                                client.ping(), timeout=10.0
                            )
                            return responses, pong
                        finally:
                            await client.close()

                    responses, pong = run_async(flood_backfill())
                finally:
                    # A livelocked loop would also hang stop(); keep the
                    # regression failure a test failure, not a suite hang.
                    stopper = threading.Thread(target=frontend.stop, daemon=True)
                    stopper.start()
                    stopper.join(timeout=15.0)
        finally:
            bundle.classifier.predict_proba = original
        assert [r["status"] for r in responses] == ["ok"] * 6
        assert pong["op"] == "pong"


class TestAsyncClient:
    def test_transport_error_fails_pending_futures(self):
        """An OSError from the socket must resolve in-flight submits."""

        class ExplodingReader:
            async def read(self, n):
                raise ConnectionResetError("peer reset")

        async def scenario():
            client = AsyncFrontendClient("127.0.0.1", 1)
            client._reader = ExplodingReader()
            future = asyncio.get_running_loop().create_future()
            client._pending[1] = future
            await client._read_loop()  # swallows the error, never raises
            with pytest.raises(ConnectionResetError):
                future.result()

        run_async(scenario())


class TestGracefulDrain:
    def test_drain_answers_every_accepted_request(self, clf_registry):
        """stop() sheds new work but serves everything already admitted."""
        bundle = clf_registry.get("blobs-clf")
        original = bundle.classifier.predict_proba

        def slow(X):
            time.sleep(0.02)
            return original(X)

        bundle.classifier.predict_proba = slow
        X, _ = make_blobs(n_per_class=1)
        try:
            with InferenceServer(
                clf_registry, model="blobs-clf", max_batch=4, max_linger_s=0.001
            ) as server:
                frontend = ServingFrontend(
                    server,
                    default_tenant=TenantConfig(
                        "default", rate=float("inf"), burst=64.0
                    ),
                ).start()

                async def submit_then_drain():
                    client = await AsyncFrontendClient(
                        "127.0.0.1", frontend.port
                    ).connect()
                    try:
                        futures = [client.submit(X[0]) for _ in range(10)]
                        # Wait until every request is admitted, then drain
                        # from a side thread while answers are in flight.
                        while frontend.accepted < 10:
                            await asyncio.sleep(0.001)
                        stopper = threading.Thread(target=frontend.stop)
                        stopper.start()
                        responses = await asyncio.gather(*futures)
                        stopper.join()
                        return responses
                    finally:
                        await client.close()

                responses = run_async(submit_then_drain())
        finally:
            bundle.classifier.predict_proba = original
        assert len(responses) == 10
        assert all(r["status"] == "ok" for r in responses)
        assert frontend.accepted == frontend.answered == 10

    def test_expired_drain_deadline_keeps_batcher_alive(self, clf_registry):
        """A result arriving after the loop closed must not kill the batcher.

        When stop()'s deadline expires with a request still inflight, the
        ServeFuture done-callback fires on the batcher thread after
        asyncio.run has closed the loop; it must swallow the dead-loop
        RuntimeError (add_done_callback's never-raise contract) so the
        server keeps serving.
        """
        bundle = clf_registry.get("blobs-clf")
        original = bundle.classifier.predict_proba
        release = threading.Event()

        def blocked(X):
            release.wait(10.0)
            return original(X)

        bundle.classifier.predict_proba = blocked
        X, _ = make_blobs(n_per_class=1)
        try:
            with InferenceServer(
                clf_registry, model="blobs-clf", max_batch=4, max_linger_s=0.2
            ) as server:
                frontend = ServingFrontend(server, drain_timeout_s=0.05).start()

                async def fire_and_forget():
                    client = await AsyncFrontendClient(
                        "127.0.0.1", frontend.port
                    ).connect()
                    try:
                        # Two requests so they linger into ONE blocked
                        # batch: both done-callbacks then fire against
                        # the closed loop, exercising the batch-fault
                        # path as well as the direct one.
                        futures = [client.submit(X[0]) for _ in range(2)]
                        while frontend._inflight < 2:
                            await asyncio.sleep(0.001)
                        for future in futures:
                            future.cancel()  # only the server side matters
                    finally:
                        await client.close()

                run_async(fire_and_forget())
                frontend.stop()  # deadline expires with requests inflight
                release.set()  # now the done-callbacks fire on a closed loop
                bundle.classifier.predict_proba = original
                # A dead batcher surfaces as a ServeError wait timeout here.
                assert server.predict(X[0], timeout_s=2.0).status == "ok"
        finally:
            bundle.classifier.predict_proba = original
            release.set()

    def test_requests_after_drain_are_shed_as_draining(self, served):
        server, frontend = served
        X, _ = make_blobs(n_per_class=1)
        frontend.admission.start_draining()
        with FrontendClient("127.0.0.1", frontend.port) as client:
            response = client.predict(X[0])
        assert response["status"] == "shed"
        assert response["reason"] == "draining"

    def test_stop_is_idempotent(self, clf_registry):
        with InferenceServer(
            clf_registry, model="blobs-clf", max_batch=4, max_linger_s=0.001
        ) as server:
            frontend = ServingFrontend(server).start()
            frontend.stop()
            frontend.stop()  # no-op, no error
