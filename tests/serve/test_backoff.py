"""Overload back-pressure: retry_after_s hints and client backoff."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.attack.realtime import StreamingDetector
from repro.serve import (
    InferenceServer,
    ModelRegistry,
    ServerOverloaded,
    StreamServingClient,
)

from tests.serve.conftest import make_blobs


@pytest.fixture()
def clf_registry(packed_classifier_bundle):
    registry = ModelRegistry()
    registry.register(packed_classifier_bundle)
    registry.get("blobs-clf")
    return registry


def fill_queue(server, row):
    """Block the batcher and stuff the queue until it rejects."""
    futures = [server.submit_features(row)]
    for _ in range(100):
        try:
            futures.append(server.submit_features(row))
        except ServerOverloaded as exc:
            return futures, exc
    pytest.fail("queue never filled")


class TestRetryAfterHint:
    def test_overload_carries_a_retry_after_estimate(self, clf_registry):
        release = threading.Event()
        bundle = clf_registry.get("blobs-clf")
        original = bundle.classifier.predict_proba
        bundle.classifier.predict_proba = lambda X: (
            release.wait(timeout=30.0),
            original(X),
        )[1]
        X, _ = make_blobs(n_per_class=2)
        server = InferenceServer(
            clf_registry,
            model="blobs-clf",
            max_batch=1,
            max_linger_s=0.0,
            max_queue=2,
        ).start()
        try:
            futures, exc = fill_queue(server, X[0])
            assert exc.retry_after_s is not None
            assert 1e-3 <= exc.retry_after_s <= 10.0
            assert "retry" in str(exc)
            release.set()
            assert all(f.result(timeout=30.0).ok for f in futures)
        finally:
            release.set()
            server.stop()
            bundle.classifier.predict_proba = original

    def test_estimate_scales_with_queue_depth(self, clf_registry):
        server = InferenceServer(
            clf_registry, model="blobs-clf", max_batch=4, max_queue=64
        )
        server._batch_latency_s = 0.1
        assert server.estimate_retry_after() == pytest.approx(0.1)  # empty queue
        for _ in range(16):
            server._queue.put_nowait(object())
        assert server.estimate_retry_after() == pytest.approx(0.4)  # 4 batches

    def test_estimate_clamped(self, clf_registry):
        server = InferenceServer(clf_registry, model="blobs-clf", max_batch=1)
        server._batch_latency_s = 1e9
        for _ in range(4):
            server._queue.put_nowait(object())
        assert server.estimate_retry_after() == 10.0


class _FlakyServer:
    """Rejects the first ``n_rejections`` submits, then accepts."""

    def __init__(self, n_rejections, retry_after_s=0.05):
        self.n_rejections = n_rejections
        self.retry_after_s = retry_after_s
        self.calls = 0

    def submit_features(self, features, model=None, timeout_s=None):
        self.calls += 1
        if self.calls <= self.n_rejections:
            raise ServerOverloaded(
                "full", retry_after_s=self.retry_after_s
            )
        return f"future-{self.calls}"


class TestClientBackoff:
    def _client(self, server, **kwargs):
        return StreamServingClient(
            server, StreamingDetector(fs=500.0, threshold_factor=3.0), **kwargs
        )

    def test_backoff_honours_the_server_hint(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            "repro.serve.stream.time.sleep", lambda s: sleeps.append(s)
        )
        server = _FlakyServer(n_rejections=3, retry_after_s=0.04)
        client = self._client(server)
        future = client._submit_with_backoff(np.zeros(24))
        assert future == "future-4"
        assert client.backoffs == 3
        # Exponential from the hint: 0.04, 0.08, 0.16 — capped at 0.5.
        assert sleeps == pytest.approx([0.04, 0.08, 0.16])

    def test_backoff_is_capped(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            "repro.serve.stream.time.sleep", lambda s: sleeps.append(s)
        )
        server = _FlakyServer(n_rejections=5, retry_after_s=0.3)
        client = self._client(server, backoff_cap_s=0.5)
        client._submit_with_backoff(np.zeros(24))
        assert max(sleeps) <= 0.5
        assert sleeps[-1] == 0.5

    def test_retries_exhausted_reraises(self, monkeypatch):
        monkeypatch.setattr("repro.serve.stream.time.sleep", lambda s: None)
        server = _FlakyServer(n_rejections=100)
        client = self._client(server, max_retries=2)
        with pytest.raises(ServerOverloaded):
            client._submit_with_backoff(np.zeros(24))
        assert server.calls == 3  # initial try + 2 retries

    def test_missing_hint_falls_back_to_default(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            "repro.serve.stream.time.sleep", lambda s: sleeps.append(s)
        )
        server = _FlakyServer(n_rejections=1, retry_after_s=None)
        client = self._client(server)
        client._submit_with_backoff(np.zeros(24))
        assert sleeps == pytest.approx([0.01])
