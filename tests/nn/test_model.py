"""Tests for repro.nn.model, losses and optimisers."""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm, Conv1D, Dense, Flatten, MaxPool1D, ReLU
from repro.nn.losses import CategoricalCrossEntropy
from repro.nn.model import History, Sequential
from repro.nn.optim import SGD, Adam


def blobs(n_per_class=60, k=3, d=6, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, size=(k, d))
    X = np.vstack(
        [centers[i] + 0.6 * rng.normal(size=(n_per_class, d)) for i in range(k)]
    )
    y = np.repeat(np.arange(k), n_per_class)
    order = rng.permutation(X.shape[0])
    return X[order], y[order]


def mlp(k=3):
    return Sequential([Dense(16), ReLU(), Dense(k)], n_classes=k, seed=0)


class TestLoss:
    def test_uniform_loss_is_log_k(self):
        loss_fn = CategoricalCrossEntropy()
        logits = np.zeros((8, 4))
        onehot = np.eye(4)[np.zeros(8, dtype=int)]
        loss, proba = loss_fn.forward(logits, onehot)
        assert loss == pytest.approx(np.log(4))
        assert np.allclose(proba, 0.25)

    def test_gradient_matches_softmax_minus_target(self):
        loss_fn = CategoricalCrossEntropy()
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 3))
        onehot = np.eye(3)[rng.integers(0, 3, 5)]
        _, proba = loss_fn.forward(logits, onehot)
        grad = loss_fn.backward()
        assert np.allclose(grad, (proba - onehot) / 5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            CategoricalCrossEntropy().forward(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_forward_codes_matches_onehot_forward(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(6, 4))
        codes = rng.integers(0, 4, 6)
        onehot = np.eye(4)[codes]
        a, b = CategoricalCrossEntropy(), CategoricalCrossEntropy()
        loss_oh, proba_oh = a.forward(logits, onehot)
        loss_c, proba_c = b.forward_codes(logits, codes)
        assert loss_c == pytest.approx(loss_oh, rel=1e-12)
        np.testing.assert_array_equal(proba_c, proba_oh)
        # The fused gradient is bitwise the same either way.
        np.testing.assert_array_equal(b.backward(), a.backward())

    def test_forward_codes_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            CategoricalCrossEntropy().forward_codes(np.zeros((2, 3)), np.zeros(3))


class TestOptimisers:
    def test_sgd_reduces_quadratic(self):
        p = np.array([5.0])
        opt = SGD(lr=0.1, momentum=0.0)
        for _ in range(100):
            opt.step([p], [2 * p])
        assert abs(p[0]) < 1e-3

    def test_sgd_momentum_accelerates(self):
        p1, p2 = np.array([5.0]), np.array([5.0])
        plain = SGD(lr=0.01, momentum=0.0)
        mom = SGD(lr=0.01, momentum=0.9)
        for _ in range(50):
            plain.step([p1], [2 * p1])
            mom.step([p2], [2 * p2])
        assert abs(p2[0]) < abs(p1[0])

    def test_adam_reduces_quadratic(self):
        p = np.array([5.0])
        opt = Adam(lr=0.2)
        for _ in range(200):
            opt.step([p], [2 * p])
        assert abs(p[0]) < 1e-2

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            Adam(lr=-1.0)


class TestSequential:
    def test_fit_separable(self):
        X, y = blobs()
        model = mlp()
        history = model.fit(X, y, epochs=60, batch_size=16)
        _, acc = model.evaluate(X, y)
        assert acc > 0.95
        assert history.loss[-1] < history.loss[0]

    def test_history_lengths(self):
        X, y = blobs()
        model = mlp()
        history = model.fit(X, y, epochs=5, validation_data=(X, y))
        assert len(history.loss) == 5
        assert len(history.val_loss) == 5
        assert len(history.accuracy) == 5
        assert len(history.val_accuracy) == 5

    def test_history_as_dict(self):
        history = History(loss=[1.0], accuracy=[0.5])
        d = history.as_dict()
        assert d["loss"] == [1.0]

    def test_predict_proba_normalised(self):
        X, y = blobs()
        model = mlp()
        model.fit(X, y, epochs=3)
        P = model.predict_proba(X)
        assert np.allclose(P.sum(axis=1), 1.0)

    def test_wrong_output_shape_detected(self):
        model = Sequential([Dense(5)], n_classes=3, seed=0)
        with pytest.raises(ValueError, match="output shape"):
            model.build((4,))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            mlp().predict(np.ones((2, 6)))

    def test_bad_codes(self):
        X, _ = blobs()
        model = mlp()
        with pytest.raises(ValueError):
            model.fit(X, np.full(X.shape[0], 7), epochs=1)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            mlp().fit(np.ones((4, 6)), np.zeros(3), epochs=1)

    def test_deterministic_given_seeds(self):
        X, y = blobs()
        a = mlp(); a.fit(X, y, epochs=3, shuffle_seed=1)
        b = mlp(); b.fit(X, y, epochs=3, shuffle_seed=1)
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_evaluate_routes_through_loss_fn(self):
        """evaluate's loss must equal the shared loss on the same logits."""
        X, y = blobs()
        model = mlp()
        model.fit(X, y, epochs=3)
        loss, acc = model.evaluate(X, y)
        logits = model._forward_batched(X)
        expected_loss, proba = CategoricalCrossEntropy().forward_codes(logits, y)
        assert loss == expected_loss
        assert acc == float(np.mean(np.argmax(proba, axis=1) == y))

    def test_fit_records_layer_spans(self):
        from repro.obs import reset_observability, tracer

        reset_observability()
        X, y = blobs(n_per_class=20)
        mlp().fit(X, y, epochs=2)
        fwd = tracer().find("layer_forward")
        bwd = tracer().find("layer_backward")
        assert len(fwd) == 3 and len(bwd) == 3  # one span per layer
        assert {s.labels["layer"] for s in fwd} == {"0:Dense", "1:ReLU", "2:Dense"}
        assert all(s.duration_s >= 0.0 for s in fwd + bwd)
        reset_observability()

    def test_conv1d_stack_trains(self):
        rng = np.random.default_rng(0)
        # Class 0: rising sequences, class 1: falling.
        n = 80
        base = np.linspace(0, 1, 16)
        X0 = base + 0.1 * rng.normal(size=(n, 16))
        X1 = base[::-1] + 0.1 * rng.normal(size=(n, 16))
        X = np.vstack([X0, X1])[..., None]
        y = np.array([0] * n + [1] * n)
        model = Sequential(
            [Conv1D(8, 3), ReLU(), MaxPool1D(2), Flatten(), Dense(2)],
            n_classes=2,
            seed=0,
        )
        model.fit(X, y, epochs=30, batch_size=16)
        _, acc = model.evaluate(X, y)
        assert acc > 0.9
