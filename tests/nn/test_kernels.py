"""Parity and gradient checks for the conv kernels.

The GEMM (im2col) kernels must agree with the original kernel-offset
reference path to tight float64 tolerances — forward outputs, input
gradients, and parameter gradients — across padding modes, kernel
shapes and channel counts. Finite-difference checks then validate both
kernel implementations (and the pooling/dense layers) against central
differences, so the parity test can't be satisfied by two identically
wrong implementations.
"""

import numpy as np
import pytest

from repro.nn.layers import Conv1D, Conv2D, Dense, MaxPool1D, MaxPool2D
from repro.nn.policy import policy_scope

RTOL = 1e-10
ATOL = 1e-12


def _pair_conv2d(filters, kernel_size, padding, c_in, hw, seed=0):
    """The same Conv2D built twice, pinned to each kernel implementation."""
    layers = []
    for kernel in ("reference", "gemm"):
        layer = Conv2D(filters, kernel_size, padding=padding, kernel=kernel)
        layer.build((hw[0], hw[1], c_in), np.random.default_rng(seed))
        layers.append(layer)
    return layers


def _pair_conv1d(filters, kernel_size, padding, c_in, length, seed=0):
    layers = []
    for kernel in ("reference", "gemm"):
        layer = Conv1D(filters, kernel_size, padding=padding, kernel=kernel)
        layer.build((length, c_in), np.random.default_rng(seed))
        layers.append(layer)
    return layers


def _run_both(ref, gem, x, grad_seed=99):
    """Forward + backward through both layers with the same upstream grad."""
    out_ref = ref.forward(x.copy(), training=False)
    out_gem = gem.forward(x.copy(), training=False)
    grad = np.random.default_rng(grad_seed).normal(size=out_ref.shape)
    dx_ref = ref.backward(grad.copy())
    dx_gem = gem.backward(grad.copy())
    return out_ref, out_gem, dx_ref, dx_gem


CONV2D_CASES = [
    # (filters, kernel_size, padding, c_in, (h, w))
    (3, (3, 3), "same", 2, (6, 5)),
    (3, (3, 3), "valid", 2, (6, 5)),
    (4, (1, 1), "same", 3, (5, 4)),
    (4, (1, 1), "valid", 3, (5, 4)),
    (2, (2, 2), "same", 1, (4, 6)),
    (2, (2, 2), "valid", 1, (4, 6)),
    (3, (3, 5), "same", 2, (7, 7)),
    (2, (5, 3), "valid", 4, (7, 6)),
    (1, (3, 3), "same", 1, (3, 3)),
]


class TestConv2DParity:
    @pytest.mark.parametrize("filters,ks,padding,c_in,hw", CONV2D_CASES)
    def test_forward_backward_match(self, filters, ks, padding, c_in, hw):
        ref, gem = _pair_conv2d(filters, ks, padding, c_in, hw)
        assert np.allclose(ref.W, gem.W) and ref.W.dtype == gem.W.dtype
        x = np.random.default_rng(1).normal(size=(3, hw[0], hw[1], c_in))
        out_ref, out_gem, dx_ref, dx_gem = _run_both(ref, gem, x)
        np.testing.assert_allclose(out_gem, out_ref, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(dx_gem, dx_ref, rtol=RTOL, atol=ATOL)
        for g_ref, g_gem in zip(ref.grads, gem.grads):
            np.testing.assert_allclose(g_gem, g_ref, rtol=RTOL, atol=ATOL)

    def test_single_row_batch(self):
        ref, gem = _pair_conv2d(2, (3, 3), "same", 2, (4, 4))
        x = np.random.default_rng(2).normal(size=(1, 4, 4, 2))
        out_ref, out_gem, dx_ref, dx_gem = _run_both(ref, gem, x)
        np.testing.assert_allclose(out_gem, out_ref, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(dx_gem, dx_ref, rtol=RTOL, atol=ATOL)

    def test_workspace_reused_across_batches(self):
        """A second same-shape batch reuses the im2col scratch buffer."""
        _, gem = _pair_conv2d(2, (3, 3), "same", 2, (4, 4))
        x = np.random.default_rng(3).normal(size=(2, 4, 4, 2))
        gem.forward(x, training=True)
        first = gem._cols_ws._buf
        gem.forward(x + 1.0, training=True)
        assert gem._cols_ws._buf is first

    def test_invalid_kernel_name(self):
        with pytest.raises(ValueError, match="kernel"):
            Conv2D(2, 3, kernel="winograd")


CONV1D_CASES = [
    # (filters, kernel_size, padding, c_in, length)
    (3, 3, "same", 2, 7),
    (3, 3, "valid", 2, 7),
    (4, 1, "same", 3, 5),
    (4, 1, "valid", 3, 5),
    (2, 2, "same", 1, 6),
    (2, 5, "valid", 2, 9),
]


class TestConv1DParity:
    @pytest.mark.parametrize("filters,ks,padding,c_in,length", CONV1D_CASES)
    def test_forward_backward_match(self, filters, ks, padding, c_in, length):
        ref, gem = _pair_conv1d(filters, ks, padding, c_in, length)
        x = np.random.default_rng(4).normal(size=(3, length, c_in))
        out_ref, out_gem, dx_ref, dx_gem = _run_both(ref, gem, x)
        np.testing.assert_allclose(out_gem, out_ref, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(dx_gem, dx_ref, rtol=RTOL, atol=ATOL)
        for g_ref, g_gem in zip(ref.grads, gem.grads):
            np.testing.assert_allclose(g_gem, g_ref, rtol=RTOL, atol=ATOL)

    def test_policy_selects_kernel(self):
        """A layer with no pinned kernel follows the active policy."""
        layer = Conv1D(2, 3)
        layer.build((6, 1), np.random.default_rng(0))
        x = np.random.default_rng(5).normal(size=(2, 6, 1))
        with policy_scope(conv_kernel="reference"):
            out_ref = layer.forward(x, training=False)
            assert layer._fwd_kernel == "reference"
        with policy_scope(conv_kernel="gemm"):
            out_gem = layer.forward(x, training=False)
            assert layer._fwd_kernel == "gemm"
        np.testing.assert_allclose(out_gem, out_ref, rtol=RTOL, atol=ATOL)


# -- finite-difference checks (both kernels) --------------------------------

def _numeric_grad_input(layer, x, eps=1e-5):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = layer.forward(x.copy(), training=False).sum()
        x[idx] = orig - eps
        minus = layer.forward(x.copy(), training=False).sum()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def _numeric_grad_params(layer, x, eps=1e-5):
    grads = []
    for p in layer.params:
        g = np.zeros_like(p)
        it = np.nditer(p, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = p[idx]
            p[idx] = orig + eps
            plus = layer.forward(x.copy(), training=False).sum()
            p[idx] = orig - eps
            minus = layer.forward(x.copy(), training=False).sum()
            p[idx] = orig
            g[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        grads.append(g)
    return grads


def _check_gradients(layer, x, atol=1e-5):
    out = layer.forward(x.copy(), training=False)
    analytic_dx = layer.backward(np.ones_like(out))
    numeric_dx = _numeric_grad_input(layer, x)
    assert np.allclose(analytic_dx, numeric_dx, atol=atol), (
        f"dX max diff {np.max(np.abs(analytic_dx - numeric_dx))}"
    )
    if layer.params:
        layer.forward(x.copy(), training=False)
        layer.backward(np.ones_like(out))
        for analytic, numeric in zip(layer.grads, _numeric_grad_params(layer, x)):
            assert np.allclose(analytic, numeric, atol=atol)


@pytest.mark.parametrize("kernel", ["reference", "gemm"])
class TestFiniteDifference:
    def test_conv2d(self, kernel):
        for padding in ("same", "valid"):
            layer = Conv2D(2, (3, 3), padding=padding, kernel=kernel)
            layer.build((4, 4, 2), np.random.default_rng(0))
            _check_gradients(
                layer, np.random.default_rng(1).normal(size=(2, 4, 4, 2))
            )

    def test_conv2d_pointwise(self, kernel):
        layer = Conv2D(3, (1, 1), kernel=kernel)
        layer.build((3, 3, 2), np.random.default_rng(0))
        _check_gradients(layer, np.random.default_rng(2).normal(size=(2, 3, 3, 2)))

    def test_conv1d(self, kernel):
        for padding in ("same", "valid"):
            layer = Conv1D(3, 3, padding=padding, kernel=kernel)
            layer.build((7, 2), np.random.default_rng(0))
            _check_gradients(layer, np.random.default_rng(3).normal(size=(2, 7, 2)))

    def test_maxpool2d(self, kernel):
        with policy_scope(conv_kernel=kernel):
            layer = MaxPool2D(2)
            _check_gradients(
                layer, np.random.default_rng(4).normal(size=(2, 4, 4, 2))
            )

    def test_maxpool1d(self, kernel):
        with policy_scope(conv_kernel=kernel):
            layer = MaxPool1D(2)
            _check_gradients(layer, np.random.default_rng(5).normal(size=(2, 6, 2)))

    def test_dense(self, kernel):
        with policy_scope(conv_kernel=kernel):
            layer = Dense(3)
            layer.build((5,), np.random.default_rng(0))
            _check_gradients(layer, np.random.default_rng(6).normal(size=(3, 5)))
