"""Golden-regression guard for the spectrogram-CNN training numerics.

A committed JSON fixture pins the per-epoch loss/accuracy of a small,
fully deterministic spectrogram-CNN fit under the *default* policy
(float64 compute through the GEMM kernels). Any change to the layers,
loss, optimiser or training loop that shifts the default-policy
trajectory fails here first. A second test checks that the float32
policy lands within tolerance of the float64 trajectory on final
accuracy — the documented contract for ``--nn-dtype float32``.

Regenerate the fixture (after an *intentional* numerics change) with::

    PYTHONPATH=src python tests/nn/test_golden_fit.py --regenerate
"""

import json
from pathlib import Path

import numpy as np

from repro.attack.models import build_spectrogram_cnn
from repro.nn.optim import Adam
from repro.nn.policy import policy_scope

FIXTURE = Path(__file__).parent / "fixtures" / "golden_spectrogram_fit.json"

N_CLASSES = 4
EPOCHS = 2


def _dataset():
    """Separable synthetic spectrograms: class k lights rows 8k..8k+8."""
    rng = np.random.default_rng(7)
    n = 48
    y = np.arange(n) % N_CLASSES
    X = 0.25 * rng.random((n, 32, 32, 1))
    for i, k in enumerate(y):
        X[i, 8 * k : 8 * k + 8, :, 0] += 0.6
    return X, y


def _fit(**policy_kwargs):
    X, y = _dataset()
    with policy_scope(**policy_kwargs):
        model = build_spectrogram_cnn(N_CLASSES, width_scale=0.25, seed=0)
        history = model.fit(
            X - 0.5,
            y,
            epochs=EPOCHS,
            batch_size=16,
            optimizer=Adam(lr=1e-3),
            shuffle_seed=0,
        )
    return model, history


class TestGoldenDefaultPolicy:
    def test_fixture_exists(self):
        assert FIXTURE.exists(), (
            f"golden fixture missing at {FIXTURE}; regenerate with "
            f"`PYTHONPATH=src python {__file__} --regenerate`"
        )

    def test_default_policy_reproduces_fixture(self):
        """Default (float64, GEMM) epoch losses/accuracies are pinned."""
        golden = json.loads(FIXTURE.read_text())
        _, history = _fit()  # the ambient default policy, deliberately unpinned
        assert history.accuracy == golden["accuracy"], (
            "default-policy training accuracy trajectory drifted"
        )
        np.testing.assert_allclose(
            history.loss, golden["loss"], rtol=1e-9,
            err_msg="default-policy training loss trajectory drifted",
        )

    def test_float32_policy_tracks_float64_accuracy(self):
        golden = json.loads(FIXTURE.read_text())
        _, history = _fit(compute_dtype="float32")
        assert abs(history.accuracy[-1] - golden["accuracy"][-1]) <= 0.15, (
            f"float32 final accuracy {history.accuracy[-1]:.3f} strayed from "
            f"the float64 golden {golden['accuracy'][-1]:.3f}"
        )
        np.testing.assert_allclose(history.loss, golden["loss"], rtol=0.05)

    def test_reference_kernel_matches_gemm_trajectory(self):
        """The seed's kernel-offset path trains to the same numbers."""
        golden = json.loads(FIXTURE.read_text())
        _, history = _fit(conv_kernel="reference")
        assert history.accuracy == golden["accuracy"]
        np.testing.assert_allclose(history.loss, golden["loss"], rtol=1e-7)


def _regenerate() -> None:
    _, history = _fit(compute_dtype="float64", conv_kernel="gemm")
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(
        json.dumps(
            {
                "policy": {"compute_dtype": "float64", "conv_kernel": "gemm"},
                "epochs": EPOCHS,
                "loss": history.loss,
                "accuracy": history.accuracy,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {FIXTURE}: loss={history.loss} accuracy={history.accuracy}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
