"""Tests for repro.nn.layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm,
    Conv1D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool1D,
    MaxPool2D,
    ReLU,
)


def numerical_grad_input(layer, x, eps=1e-5):
    """Central-difference dLoss/dInput for loss = sum(forward(x))."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = layer.forward(x.copy(), training=False).sum()
        x[idx] = orig - eps
        minus = layer.forward(x.copy(), training=False).sum()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def analytic_grad_input(layer, x):
    out = layer.forward(x.copy(), training=False)
    return layer.backward(np.ones_like(out))


def check_input_gradient(layer, x, atol=1e-5):
    analytic = analytic_grad_input(layer, x)
    numeric = numerical_grad_input(layer, x)
    assert np.allclose(analytic, numeric, atol=atol), (
        f"max diff {np.max(np.abs(analytic - numeric))}"
    )


def numerical_grad_params(layer, x, eps=1e-5):
    grads = []
    for p in layer.params:
        g = np.zeros_like(p)
        it = np.nditer(p, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = p[idx]
            p[idx] = orig + eps
            plus = layer.forward(x.copy(), training=False).sum()
            p[idx] = orig - eps
            minus = layer.forward(x.copy(), training=False).sum()
            p[idx] = orig
            g[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        grads.append(g)
    return grads


def check_param_gradients(layer, x, atol=1e-5):
    out = layer.forward(x.copy(), training=False)
    layer.backward(np.ones_like(out))
    numeric = numerical_grad_params(layer, x)
    for analytic, num in zip(layer.grads, numeric):
        assert np.allclose(analytic, num, atol=atol)


class TestDense:
    def _build(self, d=5, units=3):
        layer = Dense(units)
        layer.build((d,), np.random.default_rng(0))
        return layer

    def test_output_shape(self):
        layer = self._build()
        out = layer.forward(np.ones((4, 5)), training=True)
        assert out.shape == (4, 3)

    def test_input_gradient(self):
        layer = self._build()
        check_input_gradient(layer, np.random.default_rng(1).normal(size=(3, 5)))

    def test_param_gradients(self):
        layer = self._build()
        check_param_gradients(layer, np.random.default_rng(2).normal(size=(3, 5)))

    def test_rejects_non_flat_input(self):
        layer = Dense(3)
        with pytest.raises(ValueError):
            layer.build((4, 4), np.random.default_rng(0))

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            Dense(0)


class TestReLU:
    def test_forward(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]), training=True)
        assert np.allclose(out, [0.0, 0.0, 2.0])

    def test_gradient_mask(self):
        layer = ReLU()
        x = np.array([-1.0, 0.5, 2.0])
        layer.forward(x, training=True)
        grad = layer.backward(np.ones(3))
        assert np.allclose(grad, [0.0, 1.0, 1.0])


class TestFlatten:
    def test_round_trip(self):
        layer = Flatten()
        x = np.random.default_rng(0).normal(size=(2, 3, 4))
        out = layer.forward(x, training=True)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_output_shape_decl(self):
        assert Flatten().output_shape((3, 4, 5)) == (60,)


class TestDropout:
    def test_inference_identity(self):
        layer = Dropout(0.5)
        x = np.random.default_rng(0).normal(size=(10, 10))
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_training_scales_kept_units(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        # Expectation preserved.
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, seed=1)
        x = np.ones((20, 20))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        assert np.array_equal(grad == 0, out == 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestBatchNorm:
    def _build(self, c=4):
        layer = BatchNorm()
        layer.build((c,), np.random.default_rng(0))
        return layer

    def test_normalises_batch(self):
        layer = self._build()
        x = np.random.default_rng(0).normal(3.0, 2.0, size=(64, 4))
        out = layer.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_used_at_inference(self):
        layer = self._build()
        rng = np.random.default_rng(1)
        for _ in range(200):
            layer.forward(rng.normal(5.0, 1.0, size=(32, 4)), training=True)
        out = layer.forward(np.full((4, 4), 5.0), training=False)
        assert np.allclose(out, 0.0, atol=0.2)

    def test_input_gradient(self):
        layer = self._build(c=3)
        x = np.random.default_rng(2).normal(size=(6, 3))
        out = layer.forward(x, training=True)
        analytic = layer.backward(np.ones_like(out))
        # Numerical check with the same batch statistics (training path).
        eps = 1e-5
        numeric = np.zeros_like(x)
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                xp = x.copy(); xp[i, j] += eps
                xm = x.copy(); xm[i, j] -= eps
                lp = BatchNorm(); lp.build((3,), np.random.default_rng(0))
                lm = BatchNorm(); lm.build((3,), np.random.default_rng(0))
                numeric[i, j] = (
                    lp.forward(xp, training=True).sum()
                    - lm.forward(xm, training=True).sum()
                ) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_conv_shaped_input(self):
        layer = self._build(c=2)
        x = np.random.default_rng(3).normal(size=(4, 5, 2))
        out = layer.forward(x, training=True)
        assert out.shape == x.shape


class TestConv1D:
    def _build(self, c_in=2, filters=3, k=3, padding="same", length=7):
        layer = Conv1D(filters, k, padding=padding)
        layer.build((length, c_in), np.random.default_rng(0))
        return layer

    def test_same_padding_shape(self):
        layer = self._build()
        out = layer.forward(np.ones((2, 7, 2)), training=True)
        assert out.shape == (2, 7, 3)

    def test_valid_padding_shape(self):
        layer = self._build(padding="valid")
        out = layer.forward(np.ones((2, 7, 2)), training=True)
        assert out.shape == (2, 5, 3)

    def test_input_gradient_same(self):
        layer = self._build()
        check_input_gradient(layer, np.random.default_rng(1).normal(size=(2, 7, 2)))

    def test_input_gradient_valid(self):
        layer = self._build(padding="valid")
        check_input_gradient(layer, np.random.default_rng(2).normal(size=(2, 7, 2)))

    def test_param_gradients(self):
        layer = self._build()
        check_param_gradients(layer, np.random.default_rng(3).normal(size=(2, 7, 2)))

    def test_known_convolution(self):
        layer = Conv1D(1, 3, padding="valid")
        layer.build((5, 1), np.random.default_rng(0))
        layer.W[...] = np.array([1.0, 0.0, -1.0]).reshape(3, 1, 1)
        layer.b[...] = 0.0
        x = np.arange(5.0).reshape(1, 5, 1)
        out = layer.forward(x, training=False)
        # (x[i]*1 + x[i+2]*-1) = -2 everywhere
        assert np.allclose(out.ravel(), -2.0)


class TestConv2D:
    def _build(self, c_in=2, filters=3, k=(3, 3), padding="same", hw=(6, 5)):
        layer = Conv2D(filters, k, padding=padding)
        layer.build((hw[0], hw[1], c_in), np.random.default_rng(0))
        return layer

    def test_same_padding_shape(self):
        layer = self._build()
        out = layer.forward(np.ones((2, 6, 5, 2)), training=True)
        assert out.shape == (2, 6, 5, 3)

    def test_valid_padding_shape(self):
        layer = self._build(padding="valid")
        out = layer.forward(np.ones((2, 6, 5, 2)), training=True)
        assert out.shape == (2, 4, 3, 3)

    def test_1x1_kernel(self):
        layer = self._build(k=(1, 1))
        out = layer.forward(np.ones((1, 6, 5, 2)), training=True)
        assert out.shape == (1, 6, 5, 3)

    def test_input_gradient_same(self):
        layer = self._build(hw=(4, 4))
        check_input_gradient(layer, np.random.default_rng(1).normal(size=(2, 4, 4, 2)))

    def test_input_gradient_valid(self):
        layer = self._build(padding="valid", hw=(4, 4))
        check_input_gradient(layer, np.random.default_rng(2).normal(size=(2, 4, 4, 2)))

    def test_param_gradients(self):
        layer = self._build(hw=(4, 4))
        check_param_gradients(layer, np.random.default_rng(3).normal(size=(2, 4, 4, 2)))

    def test_even_kernel_same_padding(self):
        layer = self._build(k=(2, 2))
        out = layer.forward(np.ones((1, 6, 5, 2)), training=True)
        assert out.shape == (1, 6, 5, 3)


class TestMaxPool1D:
    def test_shape(self):
        layer = MaxPool1D(2)
        out = layer.forward(np.ones((2, 8, 3)), training=True)
        assert out.shape == (2, 4, 3)

    def test_values(self):
        layer = MaxPool1D(2)
        x = np.array([1.0, 5.0, 2.0, 3.0]).reshape(1, 4, 1)
        out = layer.forward(x, training=True)
        assert np.allclose(out.ravel(), [5.0, 3.0])

    def test_gradient_routing(self):
        layer = MaxPool1D(2)
        x = np.array([1.0, 5.0, 2.0, 3.0]).reshape(1, 4, 1)
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[ [10.0], [20.0] ]]))
        assert np.allclose(grad.ravel(), [0, 10, 0, 20])

    def test_degenerate_pool_larger_than_length(self):
        layer = MaxPool1D(8)
        x = np.arange(3.0).reshape(1, 3, 1)
        out = layer.forward(x, training=True)
        assert out.shape == (1, 1, 1)
        assert out.ravel()[0] == 2.0
        grad = layer.backward(np.ones((1, 1, 1)))
        assert grad.ravel()[2] == 1.0 and grad.sum() == 1.0

    def test_input_gradient_numerical(self):
        layer = MaxPool1D(2)
        x = np.random.default_rng(4).normal(size=(2, 6, 2))
        check_input_gradient(layer, x)


class TestMaxPool2D:
    def test_shape(self):
        layer = MaxPool2D(2)
        out = layer.forward(np.ones((2, 8, 8, 3)), training=True)
        assert out.shape == (2, 4, 4, 3)

    def test_odd_size_cropped(self):
        layer = MaxPool2D(2)
        out = layer.forward(np.ones((1, 7, 5, 1)), training=True)
        assert out.shape == (1, 3, 2, 1)

    def test_values(self):
        layer = MaxPool2D(2)
        x = np.arange(16.0).reshape(1, 4, 4, 1)
        out = layer.forward(x, training=True)
        assert np.allclose(out.ravel(), [5, 7, 13, 15])

    def test_gradient_routing(self):
        layer = MaxPool2D(2)
        x = np.arange(16.0).reshape(1, 4, 4, 1)
        layer.forward(x, training=True)
        grad = layer.backward(np.ones((1, 2, 2, 1)))
        assert grad.sum() == 4.0
        assert grad.ravel()[5] == 1.0 and grad.ravel()[15] == 1.0

    def test_input_gradient_numerical(self):
        layer = MaxPool2D(2)
        x = np.random.default_rng(5).normal(size=(2, 4, 4, 2))
        check_input_gradient(layer, x)

    def test_degenerate(self):
        layer = MaxPool2D(4)
        x = np.random.default_rng(6).normal(size=(1, 2, 2, 1))
        out = layer.forward(x, training=True)
        assert out.shape == (1, 1, 1, 1)
        assert out.ravel()[0] == x.max()
