"""Tests for logits distillation (repro.nn.distill)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiment import FeatureCNNClassifier
from repro.nn.distill import distill_feature_cnn, fit_soft_targets, soft_targets


def _blobs(seed=0, k=3, n_per=30, d=24):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=2.5, size=(k, d))
    X = np.concatenate(
        [centers[i] + rng.normal(scale=0.5, size=(n_per, d)) for i in range(k)]
    )
    y = np.repeat([f"emo{i}" for i in range(k)], n_per)
    return X, y


@pytest.fixture(scope="module")
def teacher():
    X, y = _blobs()
    cnn = FeatureCNNClassifier(epochs=6, width_scale=0.5, seed=0)
    return cnn.fit(X, y), X, y


class TestSoftTargets:
    def test_rows_are_distributions(self):
        logits = np.random.default_rng(0).normal(size=(8, 4))
        P = soft_targets(logits, temperature=2.0)
        np.testing.assert_allclose(P.sum(axis=1), 1.0, rtol=1e-12)
        assert np.all(P > 0)

    def test_higher_temperature_softens(self):
        logits = np.array([[4.0, 0.0, -4.0]])
        sharp = soft_targets(logits, temperature=1.0)
        soft = soft_targets(logits, temperature=8.0)
        assert soft.max() < sharp.max()

    def test_temperature_must_be_positive(self):
        with pytest.raises(ValueError, match="temperature"):
            soft_targets(np.zeros((1, 2)), temperature=0.0)


class TestFitSoftTargets:
    def test_shape_mismatch_rejected(self, teacher):
        t, X, _ = teacher
        from repro.attack.models import build_feature_cnn

        student = build_feature_cnn(3, width_scale=0.25, seed=1)
        Xs = t._scaler.transform(X)[..., None]
        with pytest.raises(ValueError, match="soft targets"):
            fit_soft_targets(student, Xs, np.ones((X.shape[0], 5)) / 5.0,
                             epochs=1)

    def test_loss_decreases(self, teacher):
        t, X, _ = teacher
        from repro.attack.models import build_feature_cnn

        Xs = t._scaler.transform(X)[..., None]
        logits = t._model._forward_batched(np.asarray(Xs, dtype=t._model._dtype))
        P = soft_targets(logits, temperature=2.0)
        student = build_feature_cnn(3, width_scale=0.25, seed=1)
        history = fit_soft_targets(student, Xs, P, epochs=5, shuffle_seed=1)
        assert history.loss[-1] < history.loss[0]


class TestDistillFeatureCNN:
    def test_student_is_packable_and_accurate(self, teacher):
        t, X, y = teacher
        student = distill_feature_cnn(t, X, y, width_scale=0.4, epochs=6)
        assert isinstance(student, FeatureCNNClassifier)
        np.testing.assert_array_equal(student.classes_, t.classes_)
        assert student._scaler is t._scaler
        # blob data is easy: the student must stay close to the teacher
        assert student.score(X, y) >= t.score(X, y) - 0.1

    def test_student_is_narrower(self, teacher):
        t, X, y = teacher
        student = distill_feature_cnn(t, X, y, width_scale=0.25, epochs=1)
        t_params = sum(p.size for p in t._model._params_grads()[0])
        s_params = sum(p.size for p in student._model._params_grads()[0])
        assert s_params < 0.3 * t_params

    def test_unknown_labels_rejected(self, teacher):
        t, X, y = teacher
        bad = np.array(["nope"] * len(y))
        with pytest.raises(ValueError, match="not in the teacher"):
            distill_feature_cnn(t, X, bad, epochs=1)

    def test_unfitted_teacher_rejected(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            distill_feature_cnn(
                FeatureCNNClassifier(), np.zeros((4, 24)),
                np.array(["a", "a", "b", "b"]),
            )

    def test_invalid_width_rejected(self, teacher):
        t, X, y = teacher
        with pytest.raises(ValueError, match="width_scale"):
            distill_feature_cnn(t, X, y, width_scale=1.5)
