"""Tests for the repro.nn precision/kernel policy."""

import numpy as np
import pytest

from repro.attack.models import build_feature_cnn, build_spectrogram_cnn
from repro.nn.layers import BatchNorm, Conv1D, Dense, Dropout, Flatten, ReLU
from repro.nn.model import Sequential
from repro.nn.policy import (
    DEFAULT_POLICY,
    PrecisionPolicy,
    get_policy,
    policy_scope,
    set_policy,
)


@pytest.fixture(autouse=True)
def _restore_policy():
    """Every test leaves the process-wide policy exactly as it found it."""
    before = get_policy()
    yield
    set_policy(
        compute_dtype=before.compute_dtype, conv_kernel=before.conv_kernel
    )


class TestPolicyObject:
    def test_default_is_float64_gemm(self):
        assert DEFAULT_POLICY.compute_dtype == np.dtype(np.float64)
        assert DEFAULT_POLICY.conv_kernel == "gemm"

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError, match="compute_dtype"):
            PrecisionPolicy(compute_dtype="float16")
        with pytest.raises(ValueError, match="compute_dtype"):
            set_policy(compute_dtype=np.int32)

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError, match="conv_kernel"):
            set_policy(conv_kernel="fft")

    def test_set_policy_partial_update(self):
        set_policy(compute_dtype="float32")
        assert get_policy().compute_dtype == np.dtype(np.float32)
        assert get_policy().conv_kernel == "gemm"  # untouched

    def test_policy_scope_restores_on_exit(self):
        before = get_policy()
        with policy_scope(compute_dtype="float32", conv_kernel="reference") as p:
            assert p.compute_dtype == np.dtype(np.float32)
            assert get_policy().conv_kernel == "reference"
        assert get_policy() == before

    def test_policy_scope_restores_on_error(self):
        before = get_policy()
        with pytest.raises(RuntimeError):
            with policy_scope(compute_dtype="float32"):
                raise RuntimeError("boom")
        assert get_policy() == before


class TestDtypePropagation:
    def _small_model(self):
        return Sequential(
            [Conv1D(4, 3), BatchNorm(), ReLU(), Dropout(0.2, seed=1),
             Flatten(), Dense(3)],
            n_classes=3,
            seed=0,
        )

    @pytest.mark.parametrize("name,dtype", [
        ("float32", np.float32), ("float64", np.float64),
    ])
    def test_params_and_outputs_follow_policy(self, name, dtype):
        with policy_scope(compute_dtype=name):
            model = self._small_model()
            X = np.random.default_rng(0).normal(size=(32, 8, 1))
            y = np.random.default_rng(1).integers(0, 3, 32)
            history = model.fit(X, y, epochs=2, batch_size=8)
        for layer in model.layers:
            for param in layer.params:
                assert param.dtype == dtype
            for grad in layer.grads:
                assert grad.dtype == dtype
        proba = model.predict_proba(X)
        assert proba.dtype == dtype
        assert np.all(np.isfinite(proba))
        assert np.isfinite(history.loss[-1])

    def test_batchnorm_running_stats_follow_policy(self):
        with policy_scope(compute_dtype="float32"):
            layer = BatchNorm()
            layer.build((4,), np.random.default_rng(0))
            out = layer.forward(
                np.random.default_rng(1).normal(size=(8, 4)).astype(np.float32),
                training=True,
            )
        assert layer.running_mean.dtype == np.float32
        assert out.dtype == np.float32

    def test_dropout_preserves_dtype(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((16, 16), dtype=np.float32)
        out = layer.forward(x, training=True)
        assert out.dtype == np.float32
        assert layer.backward(out).dtype == np.float32

    def test_float32_init_matches_cast_float64_init(self):
        """Both dtypes draw the same weights; float32 is the cast of float64."""
        with policy_scope(compute_dtype="float64"):
            d64 = Dense(4)
            d64.build((5,), np.random.default_rng(3))
        with policy_scope(compute_dtype="float32"):
            d32 = Dense(4)
            d32.build((5,), np.random.default_rng(3))
        np.testing.assert_array_equal(d32.W, d64.W.astype(np.float32))

    def test_dtype_pinned_at_build(self):
        """A model keeps its build-time dtype even if the policy changes."""
        with policy_scope(compute_dtype="float32"):
            model = self._small_model()
            model.build((8, 1))
        # Back under float64, inference still runs (and returns) float32.
        proba = model.predict_proba(np.random.default_rng(0).normal(size=(4, 8, 1)))
        assert proba.dtype == np.float32


class TestPaperModelsUnderPolicy:
    @pytest.mark.parametrize("builder,shape", [
        (build_feature_cnn, (24, 1)),
        (build_spectrogram_cnn, (32, 32, 1)),
    ])
    def test_float32_fit_runs(self, builder, shape):
        rng = np.random.default_rng(0)
        X = rng.random((24,) + shape)
        y = rng.integers(0, 4, 24)
        with policy_scope(compute_dtype="float32"):
            model = builder(4, width_scale=0.1, seed=0)
            history = model.fit(X, y, epochs=1, batch_size=8)
        assert np.isfinite(history.loss[0])
        assert model.predict_proba(X).dtype == np.float32


class TestCLIWiring:
    def test_cli_flags_set_policy(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["--scenario", "x", "--nn-dtype", "float32", "--nn-kernel", "reference"]
        )
        assert args.nn_dtype == "float32"
        assert args.nn_kernel == "reference"

    def test_cli_rejects_unknown_dtype(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--nn-dtype", "float16"])
