"""Unit tests for the int8 quantisation path (repro.nn.quant)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Conv1D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool1D,
    ReLU,
    Sequential,
    dequantize_weights,
    fuse_inference,
    policy_scope,
    quantize_model,
    quantize_weights,
)
from repro.nn.quant import (
    QMAX,
    QuantizedConv1D,
    QuantizedConv2D,
    QuantizedDense,
    quantize_activations,
    quantized_model_from_members,
    quantized_model_to_members,
)


def _fitted_model(seed=0, n=48, with_bn=True):
    rng = np.random.default_rng(seed)
    layers = [Conv1D(8, 3), ReLU(), Conv1D(8, 3)]
    if with_bn:
        layers.append(BatchNorm())
    layers += [ReLU(), Dropout(0.25, seed=seed), MaxPool1D(2), Flatten(),
               Dense(3)]
    model = Sequential(layers, n_classes=3, seed=seed)
    X = rng.normal(size=(n, 24, 1))
    y = rng.integers(0, 3, n)
    model.fit(X, y, epochs=3, batch_size=8)
    return model, X, y


class TestWeightCodec:
    def test_round_trip_within_half_step(self):
        rng = np.random.default_rng(1)
        w = rng.normal(scale=0.3, size=(3, 5, 16))
        q, scales = quantize_weights(w)
        assert q.dtype == np.int8
        assert scales.dtype == np.float32
        assert scales.shape == (16,)
        back = dequantize_weights(q, scales)
        # each entry rounds to the nearest code: error <= scale/2 per channel
        assert np.all(np.abs(back - w) <= scales[None, None, :] * 0.5 + 1e-7)

    def test_codes_cover_the_symmetric_range(self):
        w = np.array([[-1.0, 2.0], [1.0, -2.0]])
        q, scales = quantize_weights(w)
        assert q.max() == QMAX and q.min() == -QMAX
        np.testing.assert_allclose(scales, [1 / QMAX, 2 / QMAX], rtol=1e-6)

    def test_zero_channel_gets_unit_scale(self):
        w = np.zeros((4, 3))
        w[:, 1] = 0.5
        q, scales = quantize_weights(w)
        assert scales[0] == 1.0 and scales[2] == 1.0
        assert np.all(q[:, 0] == 0) and np.all(q[:, 2] == 0)

    def test_channel_axis_selectable(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(6, 4))
        q0, s0 = quantize_weights(w, axis=0)
        assert s0.shape == (6,)
        back = dequantize_weights(q0, s0, axis=0)
        assert np.all(np.abs(back - w) <= s0[:, None] * 0.5 + 1e-7)

    def test_activation_quantisation_is_per_sample(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(5, 7, 2))
        x[3] *= 100.0  # an outlier row must not affect other rows' scales
        xq, scale = quantize_activations(x)
        assert scale.shape == (5,)
        xq_without, scale_without = quantize_activations(x[:3])
        np.testing.assert_array_equal(xq[:3], xq_without)
        np.testing.assert_array_equal(scale[:3], scale_without)


class TestFusedInference:
    def test_fused_matches_inference_forward(self):
        model, X, _ = _fitted_model()
        fused = fuse_inference(model)
        np.testing.assert_allclose(
            fused.predict_proba(X), model.predict_proba(X), rtol=1e-10,
            atol=1e-12,
        )

    def test_fused_drops_dropout_and_batchnorm(self):
        model, _, _ = _fitted_model()
        fused = fuse_inference(model)
        kinds = {type(layer).__name__ for layer in fused.layers}
        assert "Dropout" not in kinds
        assert "BatchNorm" not in kinds

    def test_fused_shares_no_parameters(self):
        model, _, _ = _fitted_model(with_bn=False)
        fused = fuse_inference(model)
        for layer, orig in zip(fused.layers, [l for l in model.layers
                                              if not isinstance(l, Dropout)]):
            if hasattr(layer, "W"):
                assert layer.W is not orig.W

    def test_unbuilt_model_refuses(self):
        model = Sequential([Dense(3)], n_classes=3)
        with pytest.raises(RuntimeError, match="built"):
            fuse_inference(model)


class TestQuantizedLayers:
    def test_dense_matches_float_within_tolerance(self):
        rng = np.random.default_rng(4)
        W = rng.normal(scale=0.2, size=(24, 6))
        b = rng.normal(scale=0.1, size=6)
        x = rng.normal(size=(10, 24)).astype(np.float32)
        wq, scales = quantize_weights(W)
        layer = QuantizedDense(wq, scales, b.astype(np.float32))
        out = layer.forward(x)
        ref = x @ W + b
        assert np.max(np.abs(out - ref)) < 0.05 * np.max(np.abs(ref))

    def test_conv1d_matches_float_within_tolerance(self):
        rng = np.random.default_rng(5)
        layer_f = Conv1D(8, 3)
        layer_f.build((24, 2), rng)
        x = rng.normal(size=(6, 24, 2))
        ref = layer_f.forward(x, training=False)
        wq, scales = quantize_weights(layer_f.W)
        layer_q = QuantizedConv1D(wq, scales,
                                  layer_f.b.astype(np.float32))
        out = layer_q.forward(x)
        assert out.shape == ref.shape
        scale = np.max(np.abs(ref)) or 1.0
        assert np.max(np.abs(out - ref)) < 0.05 * scale

    def test_conv2d_matches_float_within_tolerance(self):
        rng = np.random.default_rng(6)
        layer_f = Conv2D(4, (3, 3))
        layer_f.build((12, 10, 2), rng)
        x = rng.normal(size=(4, 12, 10, 2))
        ref = layer_f.forward(x, training=False)
        wq, scales = quantize_weights(layer_f.W)
        layer_q = QuantizedConv2D(wq, scales,
                                  layer_f.b.astype(np.float32))
        out = layer_q.forward(x)
        assert out.shape == ref.shape
        scale = np.max(np.abs(ref)) or 1.0
        assert np.max(np.abs(out - ref)) < 0.05 * scale

    def test_training_forward_refused(self):
        wq, scales = quantize_weights(np.ones((4, 2)))
        layer = QuantizedDense(wq, scales, np.zeros(2, dtype=np.float32))
        with pytest.raises(RuntimeError, match="inference-only"):
            layer.forward(np.ones((1, 4)), training=True)

    def test_backward_refused(self):
        wq, scales = quantize_weights(np.ones((4, 2)))
        layer = QuantizedDense(wq, scales, np.zeros(2, dtype=np.float32))
        with pytest.raises(RuntimeError, match="no backward"):
            layer.backward(np.ones((1, 2)))


class TestQuantizedModel:
    def test_argmax_agreement_with_float(self):
        model, X, _ = _fitted_model()
        q = quantize_model(model)
        agree = np.mean(q.predict(X) == model.predict(X))
        assert agree >= 0.95

    def test_batched_equals_serial(self):
        model, X, _ = _fitted_model()
        q = quantize_model(model)
        batched = q.predict_proba(X)
        serial = np.concatenate(
            [q.predict_proba(X[i : i + 1]) for i in range(X.shape[0])]
        )
        np.testing.assert_array_equal(batched, serial)

    def test_serialisation_round_trip_is_exact(self):
        model, X, _ = _fitted_model()
        q = quantize_model(model)
        config, weights = quantized_model_to_members(q)
        q2 = quantized_model_from_members(config, weights)
        np.testing.assert_array_equal(q2.predict_proba(X), q.predict_proba(X))

    def test_quantization_summary_covers_every_quant_layer(self):
        model, _, _ = _fitted_model()
        q = quantize_model(model)
        summary = q.quantization_summary()
        n_quant = sum(
            isinstance(layer, (QuantizedDense, QuantizedConv1D,
                               QuantizedConv2D))
            for layer in q.layers
        )
        assert len(summary) == n_quant
        for entry in summary:
            assert entry["scale_min"] > 0
            assert entry["scale_min"] <= entry["scale_mean"] <= entry["scale_max"]


class TestPolicyKernel:
    def test_quantized_policy_inference_close_to_float(self):
        model, X, _ = _fitted_model()
        p_float = model.predict_proba(X)
        with policy_scope(conv_kernel="quantized"):
            p_quant = model.predict_proba(X)
        assert np.mean(np.argmax(p_quant, 1) == np.argmax(p_float, 1)) >= 0.95

    def test_quantized_policy_refuses_training(self):
        model, X, y = _fitted_model()
        with policy_scope(conv_kernel="quantized"):
            with pytest.raises(RuntimeError, match="inference-only"):
                model.fit(X, y, epochs=1, batch_size=8)

    def test_float_paths_untouched_by_quant_import(self):
        # importing/using the quant module must not perturb default numerics
        model, X, _ = _fitted_model(seed=7)
        before = model.predict_proba(X)
        quantize_model(model)
        np.testing.assert_array_equal(model.predict_proba(X), before)
