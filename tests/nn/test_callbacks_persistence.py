"""Tests for NN callbacks and model weight persistence."""

import numpy as np
import pytest

from repro.nn.callbacks import EarlyStopping, StepDecay
from repro.nn.layers import BatchNorm, Conv1D, Dense, Flatten, MaxPool1D, ReLU
from repro.nn.model import Sequential
from repro.nn.optim import Adam, SGD


def blobs(n_per_class=50, k=3, d=6, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, size=(k, d))
    X = np.vstack(
        [centers[i] + 0.6 * rng.normal(size=(n_per_class, d)) for i in range(k)]
    )
    y = np.repeat(np.arange(k), n_per_class)
    return X, y


def mlp(k=3, seed=0):
    return Sequential([Dense(16), ReLU(), Dense(k)], n_classes=k, seed=seed)


class TestEarlyStopping:
    def test_stops_on_plateau(self):
        X, y = blobs()
        model = mlp()
        # min_delta sets the plateau bar: stop once per-epoch improvement
        # drops below 0.01 nats for 3 consecutive epochs.
        stopper = EarlyStopping(monitor="loss", patience=2, min_delta=0.01)
        history = model.fit(X, y, epochs=200, callbacks=[stopper])
        assert len(history.loss) < 200
        assert stopper.stopped_epoch_ is not None

    def test_monitors_validation(self):
        X, y = blobs()
        model = mlp()
        stopper = EarlyStopping(monitor="val_accuracy", patience=3)
        history = model.fit(
            X, y, epochs=100, validation_data=(X, y), callbacks=[stopper]
        )
        assert len(history.val_accuracy) <= 100

    def test_no_validation_series_is_noop(self):
        X, y = blobs()
        model = mlp()
        stopper = EarlyStopping(monitor="val_loss", patience=0)
        history = model.fit(X, y, epochs=5, callbacks=[stopper])
        assert len(history.loss) == 5  # nothing to monitor, never stops

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EarlyStopping(monitor="f1")
        with pytest.raises(ValueError):
            EarlyStopping(patience=-1)

    def test_reusable_across_fits(self):
        X, y = blobs()
        stopper = EarlyStopping(monitor="loss", patience=1)
        for _ in range(2):
            model = mlp()
            model.fit(X, y, epochs=30, callbacks=[stopper])
        # on_train_begin reset state; second run also trained.
        assert stopper.best_ is not None


class TestStepDecay:
    def test_decays_lr(self):
        X, y = blobs()
        model = mlp()
        optimizer = Adam(lr=1e-2)
        model.fit(
            X, y, epochs=10, optimizer=optimizer,
            callbacks=[StepDecay(factor=0.5, every=5)],
        )
        assert optimizer.lr == pytest.approx(1e-2 * 0.25)

    def test_min_lr_floor(self):
        X, y = blobs()
        model = mlp()
        optimizer = SGD(lr=1e-3)
        model.fit(
            X, y, epochs=20, optimizer=optimizer,
            callbacks=[StepDecay(factor=0.1, every=1, min_lr=1e-5)],
        )
        assert optimizer.lr == pytest.approx(1e-5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            StepDecay(factor=0.0)
        with pytest.raises(ValueError):
            StepDecay(every=0)


class TestWeightPersistence:
    def test_round_trip_mlp(self, tmp_path):
        X, y = blobs()
        model = mlp()
        model.fit(X, y, epochs=20)
        path = tmp_path / "weights.npz"
        model.save_weights(path)
        clone = mlp()
        clone.load_weights(path, input_shape=(6,))
        assert np.allclose(model.predict_proba(X), clone.predict_proba(X))

    def test_round_trip_with_batchnorm(self, tmp_path):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 8, 1))
        y = (X.mean(axis=(1, 2)) > 0).astype(int)
        def build():
            return Sequential(
                [Conv1D(4, 3), BatchNorm(), ReLU(), MaxPool1D(2),
                 Flatten(), Dense(2)],
                n_classes=2, seed=0,
            )
        model = build()
        model.fit(X, y, epochs=10)
        path = tmp_path / "bn.npz"
        model.save_weights(path)
        clone = build()
        clone.load_weights(path, input_shape=(8, 1))
        assert np.allclose(model.predict_proba(X), clone.predict_proba(X))

    def test_unbuilt_save_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            mlp().save_weights(tmp_path / "x.npz")

    def test_load_needs_shape_when_unbuilt(self, tmp_path):
        X, y = blobs()
        model = mlp()
        model.fit(X, y, epochs=2)
        path = tmp_path / "w.npz"
        model.save_weights(path)
        with pytest.raises(RuntimeError):
            mlp().load_weights(path)

    def test_shape_mismatch_detected(self, tmp_path):
        X, y = blobs()
        model = mlp()
        model.fit(X, y, epochs=2)
        path = tmp_path / "w.npz"
        model.save_weights(path)
        other = Sequential([Dense(8), ReLU(), Dense(3)], n_classes=3, seed=0)
        with pytest.raises(ValueError):
            other.load_weights(path, input_shape=(6,))

    def _batchnorm_checkpoint(self, tmp_path):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(40, 8, 1))
        y = (X.mean(axis=(1, 2)) > 0).astype(int)

        def build():
            return Sequential(
                [Conv1D(4, 3), BatchNorm(), ReLU(), MaxPool1D(2),
                 Flatten(), Dense(2)],
                n_classes=2, seed=0,
            )

        model = build()
        model.fit(X, y, epochs=2)
        path = tmp_path / "bn.npz"
        model.save_weights(path)
        return build, path

    def test_missing_running_stats_is_valueerror(self, tmp_path):
        """A checkpoint without BatchNorm stats names the missing key."""
        build, path = self._batchnorm_checkpoint(tmp_path)
        with np.load(path) as bundle:
            arrays = {k: bundle[k] for k in bundle.files
                      if not k.endswith("running_mean")}
        stripped = tmp_path / "stripped.npz"
        np.savez_compressed(stripped, **arrays)
        with pytest.raises(ValueError, match="layer1_running_mean"):
            build().load_weights(stripped, input_shape=(8, 1))

    def test_running_stats_shape_mismatch_detected(self, tmp_path):
        build, path = self._batchnorm_checkpoint(tmp_path)
        with np.load(path) as bundle:
            arrays = {k: bundle[k] for k in bundle.files}
        arrays["layer1_running_var"] = np.ones(7)
        broken = tmp_path / "broken.npz"
        np.savez_compressed(broken, **arrays)
        with pytest.raises(ValueError, match="layer1_running_var"):
            build().load_weights(broken, input_shape=(8, 1))


class TestCheckpointErrorNaming:
    """Regression guard: checkpoint errors name the offending source, so
    a bad weights member inside a serving bundle is identifiable."""

    def _checkpoint(self, tmp_path):
        X, y = blobs()
        model = mlp()
        model.fit(X, y, epochs=2)
        path = tmp_path / "weights.npz"
        model.save_weights(path)
        return path

    def test_missing_key_names_checkpoint_path(self, tmp_path):
        path = self._checkpoint(tmp_path)
        with np.load(path) as bundle:
            arrays = {k: bundle[k] for k in bundle.files if not k.endswith("param0")}
        stripped = tmp_path / "stripped.npz"
        np.savez_compressed(stripped, **arrays)
        with pytest.raises(ValueError, match=r"checkpoint .*stripped\.npz"):
            mlp().load_weights(stripped, input_shape=(6,))

    def test_shape_mismatch_names_checkpoint_path(self, tmp_path):
        path = self._checkpoint(tmp_path)
        other = Sequential([Dense(8), ReLU(), Dense(3)], n_classes=3, seed=0)
        with pytest.raises(ValueError, match=r"checkpoint .*weights\.npz"):
            other.load_weights(path, input_shape=(6,))

    def test_file_objects_name_their_label(self, tmp_path):
        """In-memory checkpoints (bundle members) surface their .name."""
        import io

        from repro.nn.model import describe_checkpoint_source

        path = self._checkpoint(tmp_path)
        buffer = io.BytesIO(path.read_bytes())
        buffer.name = "bundle.zip:cnn_weights.npz"
        other = Sequential([Dense(8), ReLU(), Dense(3)], n_classes=3, seed=0)
        with pytest.raises(ValueError, match=r"checkpoint bundle\.zip:cnn_weights\.npz"):
            other.load_weights(buffer, input_shape=(6,))
        assert describe_checkpoint_source(path) == str(path)
        assert describe_checkpoint_source(io.BytesIO()) == "<BytesIO>"
