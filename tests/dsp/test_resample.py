"""Tests for repro.dsp.resample — including the aliasing ADC behaviour."""

import numpy as np
import pytest

from repro.dsp.resample import decimate_no_antialias, linear_resample, sample_and_decimate


def tone(freq, fs, duration=1.0):
    t = np.arange(int(duration * fs)) / fs
    return np.sin(2 * np.pi * freq * t)


class TestLinearResample:
    def test_output_length(self):
        y = linear_resample(np.ones(8000), 8000.0, 420.0)
        assert y.size == 420

    def test_upsample_preserves_tone(self):
        fs_in, fs_out = 1000.0, 4000.0
        x = tone(50.0, fs_in, 1.0)
        y = linear_resample(x, fs_in, fs_out)
        # Cross-check frequency via zero crossings.
        crossings = np.sum(np.diff(np.signbit(y)) != 0)
        assert crossings == pytest.approx(100, abs=3)

    def test_identity_rate(self):
        x = np.arange(100.0)
        assert np.allclose(linear_resample(x, 100.0, 100.0), x)

    def test_empty(self):
        assert linear_resample(np.zeros(0), 100.0, 50.0).size == 0

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            linear_resample(np.ones(10), 0.0, 100.0)


class TestSampleAndDecimate:
    def test_aliases_above_nyquist(self):
        """A 300 Hz tone sampled at 420 Hz must appear at 120 Hz."""
        fs_in, fs_out = 8000.0, 420.0
        x = tone(300.0, fs_in, 2.0)
        y = sample_and_decimate(x, fs_in, fs_out)
        spectrum = np.abs(np.fft.rfft(y * np.hanning(y.size)))
        freqs = np.fft.rfftfreq(y.size, 1.0 / fs_out)
        peak = freqs[np.argmax(spectrum)]
        assert peak == pytest.approx(120.0, abs=2.0)

    def test_energy_not_rejected(self):
        """Unlike a proper decimator, above-Nyquist energy survives."""
        fs_in, fs_out = 8000.0, 420.0
        x = tone(1000.0, fs_in, 2.0)
        y = sample_and_decimate(x, fs_in, fs_out)
        assert np.std(y) > 0.3 * np.std(x)

    def test_in_band_preserved(self):
        fs_in, fs_out = 8000.0, 420.0
        x = tone(50.0, fs_in, 2.0)
        y = sample_and_decimate(x, fs_in, fs_out)
        spectrum = np.abs(np.fft.rfft(y * np.hanning(y.size)))
        freqs = np.fft.rfftfreq(y.size, 1.0 / fs_out)
        assert freqs[np.argmax(spectrum)] == pytest.approx(50.0, abs=1.0)

    def test_phase_offset(self):
        x = np.arange(800.0)
        a = sample_and_decimate(x, 800.0, 100.0, phase=0.0)
        b = sample_and_decimate(x, 800.0, 100.0, phase=0.5)
        assert b[0] > a[0]

    def test_invalid_phase(self):
        with pytest.raises(ValueError):
            sample_and_decimate(np.ones(10), 100.0, 50.0, phase=1.5)

    def test_duration_preserved(self):
        y = sample_and_decimate(np.ones(8000), 8000.0, 420.0)
        assert y.size == pytest.approx(420, abs=1)


class TestDecimateNoAntialias:
    def test_every_kth(self):
        x = np.arange(10.0)
        assert np.allclose(decimate_no_antialias(x, 3), [0, 3, 6, 9])

    def test_factor_one_identity(self):
        x = np.arange(5.0)
        assert np.allclose(decimate_no_antialias(x, 1), x)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            decimate_no_antialias(np.ones(5), 0)
