"""Tests for repro.dsp.envelope."""

import numpy as np
import pytest

from repro.dsp.envelope import amplitude_envelope, moving_average, moving_rms


class TestMovingAverage:
    def test_constant_signal(self):
        assert np.allclose(moving_average(np.full(50, 3.0), 7), 3.0)

    def test_window_one_identity(self):
        x = np.arange(10.0)
        assert np.allclose(moving_average(x, 1), x)

    def test_matches_naive_interior(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=200)
        w = 11
        out = moving_average(x, w)
        naive = np.convolve(x, np.ones(w) / w, mode="same")
        # Interior (away from edges) matches plain convolution.
        assert np.allclose(out[w:-w], naive[w:-w], atol=1e-9)

    def test_window_larger_than_signal(self):
        x = np.arange(5.0)
        out = moving_average(x, 100)
        assert out.shape == (5,)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(5), 0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            moving_average(np.ones((2, 2)), 2)

    def test_empty(self):
        assert moving_average(np.zeros(0), 3).size == 0


class TestMovingRMS:
    def test_constant(self):
        assert np.allclose(moving_rms(np.full(40, -2.0), 5), 2.0)

    def test_nonnegative(self):
        x = np.random.default_rng(1).normal(size=300)
        assert np.all(moving_rms(x, 9) >= 0)

    def test_tracks_amplitude_change(self):
        quiet = np.random.default_rng(2).normal(0, 0.1, 200)
        loud = np.random.default_rng(3).normal(0, 1.0, 200)
        env = moving_rms(np.concatenate([quiet, loud]), 21)
        assert env[300:].mean() > 5 * env[:180].mean()


class TestAmplitudeEnvelope:
    def test_nonnegative(self):
        x = np.random.default_rng(4).normal(size=2000)
        assert np.all(amplitude_envelope(x, 420.0) >= 0)

    def test_follows_burst(self):
        fs = 420.0
        x = np.zeros(2000)
        t = np.arange(400) / fs
        x[800:1200] = np.sin(2 * np.pi * 60 * t)
        env = amplitude_envelope(x, fs)
        assert env[900:1100].mean() > 4 * env[:600].mean()

    def test_short_signal(self):
        env = amplitude_envelope(np.ones(8), 420.0)
        assert env.shape == (8,)
