"""Tests for repro.dsp.stft."""

import numpy as np
import pytest

from repro.dsp.stft import frame_signal, istft, stft


class TestFrameSignal:
    def test_shape_no_pad(self):
        frames = frame_signal(np.arange(100.0), 20, 10, pad=False)
        assert frames.shape == (9, 20)

    def test_shape_with_pad(self):
        frames = frame_signal(np.arange(105.0), 20, 10, pad=True)
        # All 105 samples covered.
        assert frames.shape[1] == 20
        assert (frames.shape[0] - 1) * 10 + 20 >= 105

    def test_content(self):
        x = np.arange(50.0)
        frames = frame_signal(x, 10, 5, pad=False)
        assert np.allclose(frames[0], x[:10])
        assert np.allclose(frames[1], x[5:15])

    def test_short_signal_padded(self):
        frames = frame_signal(np.ones(5), 16, 8, pad=True)
        assert frames.shape == (1, 16)
        assert frames[0, :5].sum() == 5.0

    def test_short_signal_no_pad_empty(self):
        frames = frame_signal(np.ones(5), 16, 8, pad=False)
        assert frames.shape == (0, 16)

    def test_invalid_hop(self):
        with pytest.raises(ValueError):
            frame_signal(np.ones(10), 4, 0)

    def test_2d_frames_each_row(self):
        X = np.stack([np.arange(50.0), np.arange(50.0, 100.0)])
        frames = frame_signal(X, 10, 5, pad=False)
        assert frames.shape == (2, 9, 10)
        for r in range(2):
            assert frames[r].tobytes() == frame_signal(X[r], 10, 5, pad=False).tobytes()

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            frame_signal(np.ones((2, 3, 3)), 2, 1)


class TestSTFT:
    def test_tone_peak_at_right_bin(self):
        fs = 1000.0
        t = np.arange(2000) / fs
        x = np.sin(2 * np.pi * 125.0 * t)
        freqs, times, Z = stft(x, fs, frame_length=256, hop_length=64)
        peak_bins = np.argmax(np.abs(Z), axis=0)
        peak_freq = freqs[int(np.median(peak_bins))]
        assert peak_freq == pytest.approx(125.0, abs=fs / 256)

    def test_axes_shapes(self):
        fs = 420.0
        freqs, times, Z = stft(np.random.default_rng(0).normal(size=840), fs)
        assert freqs.shape[0] == Z.shape[0] == 129
        assert times.shape[0] == Z.shape[1]

    def test_frequency_axis_limits(self):
        freqs, _, _ = stft(np.zeros(1000), 420.0, frame_length=128)
        assert freqs[0] == 0.0
        assert freqs[-1] == pytest.approx(210.0)


class TestISTFT:
    def test_round_trip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=2048)
        _, _, Z = stft(x, 1000.0, frame_length=256, hop_length=64)
        y = istft(Z, frame_length=256, hop_length=64)
        n = min(x.size, y.size)
        # Interior reconstruction is near-exact (edges lose window weight).
        assert np.allclose(x[256 : n - 256], y[256 : n - 256], atol=1e-8)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            istft(np.zeros(16))
