"""Tests for repro.dsp.windows."""

import numpy as np
import pytest

from repro.dsp.windows import blackman, get_window, hamming, hann, rectangular


class TestHann:
    def test_length(self):
        assert hann(64).shape == (64,)

    def test_symmetric_endpoints_zero(self):
        w = hann(65, periodic=False)
        assert w[0] == pytest.approx(0.0, abs=1e-12)
        assert w[-1] == pytest.approx(0.0, abs=1e-12)

    def test_symmetric_is_symmetric(self):
        w = hann(33, periodic=False)
        assert np.allclose(w, w[::-1])

    def test_periodic_first_sample_zero(self):
        w = hann(64, periodic=True)
        assert w[0] == pytest.approx(0.0, abs=1e-12)

    def test_peak_is_one(self):
        assert hann(65, periodic=False).max() == pytest.approx(1.0)

    def test_periodic_cola_constant(self):
        # Periodic Hann with 50% overlap satisfies constant overlap-add.
        n = 64
        w = hann(n, periodic=True)
        total = w[: n // 2] + w[n // 2 :]
        assert np.allclose(total, total[0])

    def test_length_one(self):
        assert np.allclose(hann(1), [1.0])

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            hann(0)


class TestHamming:
    def test_endpoints_nonzero(self):
        w = hamming(33, periodic=False)
        assert w[0] == pytest.approx(0.08, abs=1e-9)

    def test_values_in_range(self):
        w = hamming(50)
        assert np.all(w > 0) and np.all(w <= 1.0 + 1e-12)


class TestBlackman:
    def test_symmetric_endpoints_near_zero(self):
        w = blackman(33, periodic=False)
        assert abs(w[0]) < 1e-10

    def test_peak(self):
        assert blackman(65, periodic=False).max() == pytest.approx(1.0, abs=1e-9)


class TestRectangular:
    def test_all_ones(self):
        assert np.allclose(rectangular(17), 1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            rectangular(0)


class TestGetWindow:
    @pytest.mark.parametrize(
        "name", ["hann", "hanning", "hamming", "blackman", "rect", "boxcar"]
    )
    def test_known_names(self, name):
        assert get_window(name, 16).shape == (16,)

    def test_case_insensitive(self):
        assert np.allclose(get_window("HANN", 16), hann(16))

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown window"):
            get_window("kaiser", 16)
