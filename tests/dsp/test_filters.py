"""Tests for repro.dsp.filters."""

import numpy as np
import pytest

from repro.dsp.filters import (
    bandpass,
    butter_bandpass,
    butter_highpass,
    butter_lowpass,
    highpass,
    lowpass,
    sosfilt_zero_phase,
)


def tone(freq, fs, duration=2.0):
    t = np.arange(int(duration * fs)) / fs
    return np.sin(2 * np.pi * freq * t)


class TestDesign:
    def test_highpass_shape(self):
        sos = butter_highpass(8.0, 420.0, order=4)
        assert sos.ndim == 2 and sos.shape[1] == 6

    def test_invalid_cutoff_zero(self):
        with pytest.raises(ValueError):
            butter_highpass(0.0, 420.0)

    def test_invalid_cutoff_above_nyquist(self):
        with pytest.raises(ValueError):
            butter_lowpass(300.0, 420.0)

    def test_bandpass_order_of_edges(self):
        with pytest.raises(ValueError):
            butter_bandpass(50.0, 10.0, 420.0)


class TestHighpass:
    def test_removes_dc(self):
        x = np.ones(2000) * 5.0
        y = highpass(x, 8.0, 420.0)
        assert np.max(np.abs(y[100:-100])) < 1e-6

    def test_passes_high_frequency(self):
        fs = 420.0
        x = tone(100.0, fs)
        y = highpass(x, 8.0, fs)
        ratio = np.std(y[200:-200]) / np.std(x[200:-200])
        assert ratio == pytest.approx(1.0, abs=0.05)

    def test_attenuates_below_cutoff(self):
        fs = 420.0
        x = tone(1.0, fs, duration=8.0)
        y = highpass(x, 8.0, fs)
        assert np.std(y) < 0.05 * np.std(x)

    def test_zero_phase_no_delay(self):
        # A symmetric pulse stays centred after zero-phase filtering.
        fs = 420.0
        x = np.zeros(1001)
        x[500] = 1.0
        y = highpass(x, 8.0, fs)
        assert abs(int(np.argmax(np.abs(y))) - 500) <= 1


class TestLowpass:
    def test_passes_dc(self):
        x = np.ones(2000) * 3.0
        y = lowpass(x, 10.0, 420.0)
        assert np.allclose(y[200:-200], 3.0, atol=1e-6)

    def test_removes_high_frequency(self):
        fs = 420.0
        x = tone(150.0, fs)
        y = lowpass(x, 10.0, fs)
        # Interior only: filtfilt edge transients dominate the borders.
        assert np.std(y[200:-200]) < 0.02 * np.std(x[200:-200])


class TestBandpass:
    def test_passes_in_band(self):
        fs = 420.0
        x = tone(50.0, fs, 4.0)
        y = bandpass(x, 20.0, 100.0, fs)
        assert np.std(y[200:-200]) > 0.9 * np.std(x[200:-200])

    def test_rejects_out_of_band(self):
        fs = 420.0
        lo = tone(2.0, fs, 4.0)
        hi = tone(180.0, fs, 4.0)
        assert np.std(bandpass(lo, 20.0, 100.0, fs)) < 0.05
        assert np.std(bandpass(hi, 20.0, 100.0, fs)) < 0.05


class TestZeroPhase:
    def test_rejects_2d(self):
        sos = butter_highpass(8.0, 420.0)
        with pytest.raises(ValueError):
            sosfilt_zero_phase(sos, np.zeros((4, 4)))

    def test_short_signal_fallback(self):
        sos = butter_highpass(8.0, 420.0, order=4)
        y = sosfilt_zero_phase(sos, np.ones(10))
        assert y.shape == (10,)
