"""Tests for repro.dsp.spectrogram."""

import numpy as np
import pytest

from repro.dsp.spectrogram import (
    log_spectrogram,
    power_spectrogram,
    resize_image,
    spectrogram_image,
)


def tone(freq, fs, duration=1.0):
    t = np.arange(int(duration * fs)) / fs
    return np.sin(2 * np.pi * freq * t)


class TestPowerSpectrogram:
    def test_nonnegative(self):
        _, _, P = power_spectrogram(np.random.default_rng(0).normal(size=1000), 420.0)
        assert np.all(P >= 0)

    def test_tone_concentration(self):
        fs = 420.0
        freqs, _, P = power_spectrogram(tone(100.0, fs, 2.0), fs, frame_length=128)
        band = (freqs > 80) & (freqs < 120)
        assert P[band].sum() > 0.9 * P.sum()


class TestLogSpectrogram:
    def test_max_is_zero_db(self):
        _, _, db = log_spectrogram(tone(50.0, 420.0), 420.0)
        assert db.max() == pytest.approx(0.0, abs=1e-9)

    def test_floor_applied(self):
        _, _, db = log_spectrogram(tone(50.0, 420.0), 420.0, floor_db=-80.0)
        assert db.min() >= -80.0 - 1e-9


class TestResizeImage:
    def test_identity_same_shape(self):
        img = np.random.default_rng(0).normal(size=(16, 16))
        out = resize_image(img, (16, 16))
        assert np.allclose(out, img, atol=1e-9)

    def test_output_shape(self):
        out = resize_image(np.ones((10, 33)), (32, 32))
        assert out.shape == (32, 32)

    def test_constant_preserved(self):
        out = resize_image(np.full((5, 9), 7.0), (13, 4))
        assert np.allclose(out, 7.0)

    def test_upsample_monotone_ramp(self):
        ramp = np.tile(np.arange(8.0), (4, 1))
        out = resize_image(ramp, (4, 64))
        assert np.all(np.diff(out[0]) >= -1e-12)

    def test_single_pixel_target(self):
        out = resize_image(np.arange(16.0).reshape(4, 4), (1, 1))
        assert out.shape == (1, 1)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            resize_image(np.ones(8), (4, 4))

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            resize_image(np.ones((4, 4)), (0, 4))


class TestSpectrogramImage:
    def test_shape_and_range(self):
        img = spectrogram_image(tone(60.0, 420.0, 0.5), 420.0, size=32)
        assert img.shape == (32, 32)
        assert img.min() >= 0.0 and img.max() <= 1.0
        assert img.max() == pytest.approx(1.0)

    def test_silent_region_is_zero(self):
        img = spectrogram_image(np.zeros(300), 420.0, size=32)
        assert np.allclose(img, 0.0)

    def test_short_region_handled(self):
        img = spectrogram_image(np.random.default_rng(0).normal(size=20), 420.0)
        assert img.shape == (32, 32)

    def test_different_tones_differ(self):
        a = spectrogram_image(tone(30.0, 420.0, 0.5), 420.0)
        b = spectrogram_image(tone(150.0, 420.0, 0.5), 420.0)
        assert not np.allclose(a, b)
