"""Tests for repro.phone.environment and the channel environment option."""

import numpy as np
import pytest

from repro.phone.channel import VibrationChannel
from repro.phone.environment import ENVIRONMENTS, EnvironmentNoise, get_environment


class TestEnvironmentProfiles:
    def test_three_environments(self):
        assert set(ENVIRONMENTS) == {"quiet_room", "busy_office", "vehicle"}

    def test_lookup(self):
        assert get_environment("Busy_Office").name == "busy_office"

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_environment("spacecraft")

    def test_severity_ordering(self):
        quiet = get_environment("quiet_room")
        office = get_environment("busy_office")
        vehicle = get_environment("vehicle")
        assert quiet.hum_rms < office.hum_rms < vehicle.hum_rms


class TestNoiseGeneration:
    def test_length(self):
        env = get_environment("busy_office")
        out = env.noise(4000, 8000.0, np.random.default_rng(0))
        assert out.shape == (4000,)

    def test_zero_length(self):
        env = get_environment("quiet_room")
        assert env.noise(0, 8000.0, np.random.default_rng(0)).size == 0

    def test_rms_scaling(self):
        rng = np.random.default_rng(1)
        quiet = get_environment("quiet_room").noise(80000, 8000.0, rng)
        rng = np.random.default_rng(1)
        vehicle = get_environment("vehicle").noise(80000, 8000.0, rng)
        assert np.std(vehicle) > 5 * np.std(quiet)

    def test_bumps_present_in_office(self):
        env = EnvironmentNoise(
            name="x", hum_rms=0.0, hum_low_hz=5, hum_high_hz=60,
            bump_rate_hz=5.0, bump_amp=0.1,
        )
        out = env.noise(80000, 8000.0, np.random.default_rng(2))
        assert np.max(np.abs(out)) > 0.02  # at least one transient landed


class TestChannelEnvironment:
    def _speech(self):
        t = np.arange(8000) / 8000.0
        return 0.3 * np.sin(2 * np.pi * 500 * t)

    def test_environment_by_name(self):
        channel = VibrationChannel("oneplus7t", environment="vehicle")
        out = channel.transmit(np.zeros(8000), 8000.0)
        quiet = VibrationChannel("oneplus7t").transmit(np.zeros(8000), 8000.0)
        assert np.std(out) > 2 * np.std(quiet)

    def test_environment_instance(self):
        env = get_environment("busy_office")
        channel = VibrationChannel("oneplus7t", environment=env)
        out = channel.transmit(self._speech(), 8000.0)
        assert np.all(np.isfinite(out))

    def test_none_is_default(self):
        channel = VibrationChannel("oneplus7t")
        assert channel.environment is None

    def test_vehicle_degrades_snr(self):
        x = self._speech()
        clean = VibrationChannel("oneplus7t", environment="quiet_room")
        noisy = VibrationChannel("oneplus7t", environment="vehicle")
        sig_clean = clean.transmit(x, 8000.0)
        ref_clean = clean.transmit(np.zeros(8000), 8000.0)
        sig_noisy = noisy.transmit(x, 8000.0)
        ref_noisy = noisy.transmit(np.zeros(8000), 8000.0)
        snr_clean = np.std(sig_clean) / np.std(ref_clean)
        snr_noisy = np.std(sig_noisy) / np.std(ref_noisy)
        assert snr_noisy < snr_clean
