"""Tests for repro.phone.triaxial."""

import numpy as np
import pytest

from repro.phone.accelerometer import GRAVITY
from repro.phone.triaxial import TriaxialAccelerometer


def tone(freq=300.0, fs=8000.0, duration=1.0, amp=0.2):
    t = np.arange(int(duration * fs)) / fs
    return amp * np.sin(2 * np.pi * freq * t)


class TestTriaxialAccelerometer:
    def test_output_shape(self):
        sensor = TriaxialAccelerometer(fs=420.0)
        out = sensor.sample(tone(), 8000.0, np.random.default_rng(0))
        assert out.ndim == 2 and out.shape[1] == 3
        assert out.shape[0] == pytest.approx(420, abs=2)

    def test_gravity_only_on_z_when_flat(self):
        sensor = TriaxialAccelerometer(fs=420.0, noise_rms=0.0, lsb=0.0)
        out = sensor.sample(np.zeros(8000), 8000.0, np.random.default_rng(0))
        assert np.allclose(out[:, 0], 0.0)
        assert np.allclose(out[:, 1], 0.0)
        assert np.allclose(out[:, 2], GRAVITY)

    def test_z_axis_strongest_coupling(self):
        sensor = TriaxialAccelerometer(fs=420.0, noise_rms=0.0, lsb=0.0)
        out = sensor.sample(tone(), 8000.0, np.random.default_rng(1))
        stds = [np.std(out[:, i] - out[:, i].mean()) for i in range(3)]
        assert stds[2] > stds[0]
        assert stds[2] > stds[1]

    def test_axes_share_clock(self):
        """Same signal content per axis up to coupling scale (no noise)."""
        sensor = TriaxialAccelerometer(
            fs=420.0, noise_rms=0.0, lsb=0.0, axis_coupling=(0.5, 0.5, 1.0)
        )
        out = sensor.sample(tone(), 8000.0, np.random.default_rng(2))
        x = out[:, 0]
        z = out[:, 2] - GRAVITY
        assert np.allclose(2 * x, z, atol=1e-9)

    def test_custom_orientation(self):
        sensor = TriaxialAccelerometer(
            fs=420.0, noise_rms=0.0, lsb=0.0, gravity_axis=(1.0, 0.0, 0.0)
        )
        out = sensor.sample(np.zeros(8000), 8000.0, np.random.default_rng(0))
        assert np.allclose(out[:, 0], GRAVITY)
        assert np.allclose(out[:, 2], 0.0)

    def test_invalid_coupling(self):
        with pytest.raises(ValueError):
            TriaxialAccelerometer(axis_coupling=(-1.0, 0.5, 1.0))

    def test_slow_component_mismatch(self):
        sensor = TriaxialAccelerometer()
        with pytest.raises(ValueError):
            sensor.sample(np.zeros(100), 8000.0, np.random.default_rng(0),
                          np.zeros(40))

    def test_aliasing_on_every_axis(self):
        sensor = TriaxialAccelerometer(fs=420.0, noise_rms=0.0, lsb=0.0)
        out = sensor.sample(tone(300.0, duration=2.0), 8000.0,
                            np.random.default_rng(3))
        for axis in range(3):
            x = out[:, axis] - out[:, axis].mean()
            spectrum = np.abs(np.fft.rfft(x * np.hanning(x.size)))
            freqs = np.fft.rfftfreq(x.size, 1 / 420.0)
            assert freqs[np.argmax(spectrum)] == pytest.approx(120.0, abs=3.0)
