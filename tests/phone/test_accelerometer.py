"""Tests for repro.phone.accelerometer."""

import numpy as np
import pytest

from repro.phone.accelerometer import GRAVITY, Accelerometer


def tone(freq, fs=8000.0, duration=1.0, amp=0.1):
    t = np.arange(int(duration * fs)) / fs
    return amp * np.sin(2 * np.pi * freq * t)


class TestAccelerometer:
    def test_output_rate(self):
        accel = Accelerometer(fs=420.0)
        out = accel.sample(np.zeros(8000), 8000.0, np.random.default_rng(0))
        assert out.size == pytest.approx(420, abs=2)

    def test_gravity_offset(self):
        accel = Accelerometer(fs=420.0, noise_rms=0.0, lsb=0.0)
        out = accel.sample(np.zeros(8000), 8000.0, np.random.default_rng(0))
        assert np.allclose(out, GRAVITY)

    def test_gravity_disabled(self):
        accel = Accelerometer(fs=420.0, noise_rms=0.0, lsb=0.0, include_gravity=False)
        out = accel.sample(np.zeros(8000), 8000.0, np.random.default_rng(0))
        assert np.allclose(out, 0.0)

    def test_noise_floor(self):
        accel = Accelerometer(fs=420.0, noise_rms=0.01, lsb=0.0)
        out = accel.sample(np.zeros(80000), 8000.0, np.random.default_rng(1))
        assert np.std(out) == pytest.approx(0.01, rel=0.15)

    def test_quantisation(self):
        accel = Accelerometer(fs=420.0, noise_rms=0.0, lsb=0.01)
        out = accel.sample(tone(50.0), 8000.0, np.random.default_rng(0))
        steps = np.round(out / 0.01)
        assert np.allclose(out, steps * 0.01, atol=1e-12)

    def test_clipping(self):
        accel = Accelerometer(fs=420.0, noise_rms=0.0, lsb=0.0, full_scale=10.0)
        big = 100.0 * np.ones(8000)
        out = accel.sample(big, 8000.0, np.random.default_rng(0))
        assert np.max(out) <= 10.0

    def test_aliasing_preserved(self):
        """A 300 Hz vibration appears at 120 Hz in the 420 Hz stream."""
        accel = Accelerometer(fs=420.0, noise_rms=0.0, lsb=0.0, include_gravity=False)
        out = accel.sample(tone(300.0, duration=2.0, amp=1.0), 8000.0,
                           np.random.default_rng(2))
        spectrum = np.abs(np.fft.rfft(out * np.hanning(out.size)))
        freqs = np.fft.rfftfreq(out.size, 1 / 420.0)
        assert freqs[np.argmax(spectrum)] == pytest.approx(120.0, abs=2.0)

    def test_slow_component_added(self):
        accel = Accelerometer(fs=420.0, noise_rms=0.0, lsb=0.0, include_gravity=False)
        slow = 0.5 * np.ones(8000)
        out = accel.sample(np.zeros(8000), 8000.0, np.random.default_rng(0), slow)
        assert np.allclose(out, 0.5)

    def test_slow_component_shape_mismatch(self):
        accel = Accelerometer()
        with pytest.raises(ValueError):
            accel.sample(np.zeros(100), 8000.0, np.random.default_rng(0), np.zeros(50))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Accelerometer(fs=0.0)

    def test_android_cap_rate(self):
        accel = Accelerometer(fs=200.0)
        out = accel.sample(np.zeros(8000), 8000.0, np.random.default_rng(0))
        assert out.size == pytest.approx(200, abs=2)
