"""Tests for repro.phone.recording."""

import numpy as np
import pytest

from repro.datasets import build_tess
from repro.phone.channel import VibrationChannel
from repro.phone.recording import PlaybackEvent, record_session


@pytest.fixture(scope="module")
def corpus():
    return build_tess(words_per_emotion=2, seed=3)


@pytest.fixture()
def channel():
    return VibrationChannel("oneplus7t")


class TestPlaybackEvent:
    def test_duration(self):
        event = PlaybackEvent("u1", "s1", "angry", 1.0, 2.5)
        assert event.duration_s == pytest.approx(1.5)


class TestRecordSession:
    def test_event_count(self, corpus, channel):
        session = record_session(corpus, channel, seed=0)
        assert len(session.events) == len(corpus)

    def test_trace_duration_covers_events(self, corpus, channel):
        session = record_session(corpus, channel, seed=0)
        assert session.duration_s >= session.events[-1].end_s - 0.1

    def test_events_ordered_and_disjoint(self, corpus, channel):
        session = record_session(corpus, channel, seed=0)
        for prev, cur in zip(session.events, session.events[1:]):
            assert cur.start_s >= prev.end_s - 1e-6

    def test_grouped_by_emotion(self, corpus, channel):
        """The paper plays all audio of one emotion consecutively."""
        session = record_session(corpus, channel, group_by_emotion=True, seed=0)
        order = [e.emotion for e in session.events]
        # Each emotion appears as one contiguous block.
        blocks = [order[0]]
        for emotion in order[1:]:
            if emotion != blocks[-1]:
                blocks.append(emotion)
        assert len(blocks) == len(set(order))

    def test_label_at(self, corpus, channel):
        session = record_session(corpus, channel, seed=0)
        event = session.events[0]
        mid = 0.5 * (event.start_s + event.end_s)
        assert session.label_at(mid) == event.emotion
        assert session.label_at(event.start_s - 0.05) != event.emotion or True

    def test_label_at_gap_is_none(self, corpus, channel):
        session = record_session(corpus, channel, gap_s=0.5, seed=0)
        first = session.events[0]
        assert session.label_at(first.end_s + 0.25) is None

    def test_emotion_intervals(self, corpus, channel):
        session = record_session(corpus, channel, seed=0)
        intervals = session.emotion_intervals()
        assert set(intervals) == set(corpus.emotions)
        assert sum(len(v) for v in intervals.values()) == len(session.events)

    def test_specs_subset(self, corpus, channel):
        subset = corpus.specs[:5]
        session = record_session(corpus, channel, specs=subset, seed=0)
        assert len(session.events) == 5

    def test_deterministic(self, corpus, channel):
        a = record_session(corpus, channel, specs=corpus.specs[:4], seed=9)
        b = record_session(corpus, channel, specs=corpus.specs[:4], seed=9)
        assert np.array_equal(a.trace, b.trace)

    def test_invalid_gap(self, corpus, channel):
        with pytest.raises(ValueError):
            record_session(corpus, channel, gap_s=-0.1)

    def test_metadata(self, corpus):
        channel = VibrationChannel("pixel5", mode="ear_speaker", placement="handheld")
        session = record_session(corpus, channel, specs=corpus.specs[:2], seed=0)
        assert session.device_name == "pixel5"
        assert session.mode == "ear_speaker"
        assert session.placement == "handheld"
