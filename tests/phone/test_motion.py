"""Tests for repro.phone.motion."""

import numpy as np
import pytest

from repro.dsp.filters import highpass
from repro.phone.motion import HandheldMotion, MotionProcess


@pytest.fixture()
def process():
    return MotionProcess(HandheldMotion(), np.random.default_rng(0))


class TestAdvance:
    def test_length(self, process):
        assert process.advance(1000, 8000.0).shape == (1000,)

    def test_zero_length(self, process):
        assert process.advance(0, 8000.0).size == 0

    def test_continuity_across_chunks(self):
        """Two chunked calls must equal one long call (same seed)."""
        a = MotionProcess(HandheldMotion(), np.random.default_rng(7))
        b = MotionProcess(HandheldMotion(), np.random.default_rng(7))
        whole = a.advance(2000, 8000.0)
        parts = np.concatenate([b.advance(800, 8000.0), b.advance(1200, 8000.0)])
        assert np.allclose(whole, parts)

    def test_band_limited_below_8hz(self, process):
        """The detection high-pass must remove most motion noise."""
        fs = 420.0
        noise = process.advance(int(60 * fs), fs)
        # At the paper's 8 Hz cutoff the 7.5 Hz band edge is only partly
        # attenuated; the bulk of the motion energy must still go.
        assert np.std(highpass(noise, 8.0, fs, order=4)) < 0.3 * np.std(noise)
        # Slightly above the band the rejection is essentially total.
        assert np.std(highpass(noise, 12.0, fs, order=4)) < 0.05 * np.std(noise)

    def test_rms_calibration(self, process):
        fs = 420.0
        noise = process.advance(int(120 * fs), fs)
        config = HandheldMotion()
        expected = np.sqrt(config.tremor_rms**2 + config.sway_rms**2)
        assert np.std(noise) == pytest.approx(expected, rel=0.5)

    def test_disabled_components(self):
        quiet = MotionProcess(
            HandheldMotion(tremor_rms=0.0, sway_rms=0.0), np.random.default_rng(0)
        )
        assert np.allclose(quiet.advance(500, 420.0), 0.0)


class TestDrift:
    def test_proportional_to_level(self, process):
        fs = 8000.0
        rng = np.random.default_rng(1)
        quiet = 0.01 * rng.normal(size=int(2 * fs))
        loud = 0.1 * rng.normal(size=int(2 * fs))
        fresh = lambda: MotionProcess(HandheldMotion(), np.random.default_rng(0))
        d_quiet = fresh().drift(quiet, fs)
        d_loud = fresh().drift(loud, fs)
        assert d_loud[-2000:].mean() > 3 * d_quiet[-2000:].mean()

    def test_nonnegative(self, process):
        drift = process.drift(np.random.default_rng(2).normal(size=4000), 8000.0)
        assert np.all(drift >= 0)

    def test_state_persists_across_chunks(self):
        """Drift decays smoothly into a silent chunk instead of resetting."""
        proc = MotionProcess(HandheldMotion(), np.random.default_rng(0))
        fs = 8000.0
        loud = 0.2 * np.random.default_rng(3).normal(size=int(1 * fs))
        proc.drift(loud, fs)
        tail = proc.drift(np.zeros(int(0.05 * fs)), fs)
        assert tail[0] > 0.01  # memory of the loud chunk

    def test_empty(self, process):
        assert process.drift(np.zeros(0), 8000.0).size == 0

    def test_zero_coupling(self):
        proc = MotionProcess(
            HandheldMotion(envelope_coupling=0.0), np.random.default_rng(0)
        )
        drift = proc.drift(np.ones(1000), 8000.0)
        assert np.allclose(drift, 0.0)
