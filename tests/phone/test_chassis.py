"""Tests for repro.phone.chassis."""

import numpy as np
import pytest

from repro.phone.chassis import ChassisTransfer


def tone(freq, fs=8000.0, duration=1.0):
    t = np.arange(int(duration * fs)) / fs
    return np.sin(2 * np.pi * freq * t)


class TestChassisTransfer:
    def test_output_shape(self):
        transfer = ChassisTransfer()
        out = transfer.transfer(np.random.default_rng(0).normal(size=1000), 8000.0)
        assert out.shape == (1000,)

    def test_resonance_emphasis(self):
        transfer = ChassisTransfer(resonance_hz=900.0, q_factor=6.0, attenuation=1.0)
        at_resonance = transfer.transfer(tone(900.0), 8000.0)
        off_resonance = transfer.transfer(tone(3000.0), 8000.0)
        assert np.std(at_resonance[500:]) > np.std(off_resonance[500:])

    def test_attenuation_scales_output(self):
        x = tone(900.0)
        strong = ChassisTransfer(attenuation=1.0).transfer(x, 8000.0)
        weak = ChassisTransfer(attenuation=0.1).transfer(x, 8000.0)
        assert np.std(weak) == pytest.approx(0.1 * np.std(strong), rel=1e-6)

    def test_resonance_clamped_to_nyquist(self):
        transfer = ChassisTransfer(resonance_hz=10_000.0)
        out = transfer.transfer(tone(100.0, fs=2000.0), 2000.0)
        assert np.all(np.isfinite(out))

    def test_empty(self):
        assert ChassisTransfer().transfer(np.zeros(0), 8000.0).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            ChassisTransfer().transfer(np.zeros((2, 2)), 8000.0)

    def test_broadband_component_passes(self):
        """Some non-resonant energy must survive (conductive path)."""
        transfer = ChassisTransfer(resonance_hz=900.0)
        out = transfer.transfer(tone(100.0), 8000.0)
        assert np.std(out) > 0.05
