"""Tests for repro.phone.channel."""

import numpy as np
import pytest

from repro.phone.accelerometer import GRAVITY
from repro.phone.channel import Placement, SpeakerMode, VibrationChannel


def speech_like(fs=8000.0, duration=1.0, seed=0):
    """Band-limited noise burst approximating speech energy."""
    rng = np.random.default_rng(seed)
    t = np.arange(int(duration * fs)) / fs
    carrier = np.sin(2 * np.pi * 500 * t) + 0.5 * np.sin(2 * np.pi * 900 * t)
    envelope = 0.5 * (1 + np.sin(2 * np.pi * 3 * t))
    return 0.3 * carrier * envelope + 0.01 * rng.normal(size=t.size)


class TestConstruction:
    def test_device_by_name(self):
        channel = VibrationChannel("oneplus7t")
        assert channel.device.name == "oneplus7t"

    def test_default_scenario(self):
        channel = VibrationChannel("pixel5")
        assert channel.mode is SpeakerMode.LOUDSPEAKER
        assert channel.placement is Placement.TABLE_TOP

    def test_string_enums_accepted(self):
        channel = VibrationChannel("pixel5", mode="ear_speaker", placement="handheld")
        assert channel.mode is SpeakerMode.EAR_SPEAKER
        assert channel.placement is Placement.HANDHELD

    def test_sample_rate_override(self):
        channel = VibrationChannel("oneplus7t", sample_rate=200.0)
        assert channel.accel_fs == 200.0

    def test_default_rate_from_device(self):
        channel = VibrationChannel("oneplus7t")
        assert channel.accel_fs == 420.0

    def test_unknown_device(self):
        with pytest.raises(ValueError):
            VibrationChannel("nokia3310")


class TestTransmit:
    def test_output_rate(self):
        channel = VibrationChannel("oneplus7t")
        out = channel.transmit(speech_like(duration=2.0), 8000.0)
        assert out.size == pytest.approx(2 * 420, abs=3)

    def test_gravity_present(self):
        channel = VibrationChannel("oneplus7t")
        out = channel.transmit(speech_like(), 8000.0)
        assert out.mean() == pytest.approx(GRAVITY, abs=0.5)

    def test_speech_visible_above_noise_loudspeaker(self):
        channel = VibrationChannel("oneplus7t")
        speech = channel.transmit(speech_like(), 8000.0)
        silence = channel.transmit(np.zeros(8000), 8000.0)
        assert np.std(speech) > 3 * np.std(silence)

    def test_ear_speaker_much_weaker(self):
        loud = VibrationChannel("oneplus7t", mode="loudspeaker")
        ear = VibrationChannel("oneplus7t", mode="ear_speaker")
        x = speech_like()
        strong = loud.transmit(x, 8000.0)
        weak = ear.transmit(x, 8000.0)
        assert np.std(weak - weak.mean()) < 0.5 * np.std(strong - strong.mean())

    def test_handheld_noisier_than_tabletop_below_8hz(self):
        table = VibrationChannel("oneplus7t", placement="table_top")
        hand = VibrationChannel("oneplus7t", placement="handheld")
        silence = np.zeros(8000 * 10)
        quiet = table.transmit(silence, 8000.0)
        moving = hand.transmit(silence, 8000.0)
        assert np.std(moving) > 2 * np.std(quiet)

    def test_reseed_reproducible(self):
        channel = VibrationChannel("oneplus7t", placement="handheld")
        x = speech_like()
        channel.reseed(5)
        a = channel.transmit(x, 8000.0)
        channel.reseed(5)
        b = channel.transmit(x, 8000.0)
        assert np.array_equal(a, b)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            VibrationChannel("oneplus7t").transmit(np.zeros((2, 2)), 8000.0)

    def test_device_gain_ordering(self):
        """Stronger-coupling devices yield larger vibration signatures."""
        x = speech_like()
        def signal_std(name):
            channel = VibrationChannel(name)
            out = channel.transmit(x, 8000.0)
            return np.std(out - out.mean())
        assert signal_std("oneplus7t") > signal_std("pixel5")
