"""Tests for repro.phone.speaker."""

import numpy as np
import pytest

from repro.phone.speaker import SpeakerModel, ear_speaker_model, loudspeaker_model


def tone(freq, fs=8000.0, duration=1.0):
    t = np.arange(int(duration * fs)) / fs
    return np.sin(2 * np.pi * freq * t)


class TestSpeakerModel:
    def test_gain_applied(self):
        model = SpeakerModel(drive_gain=2.0, rolloff_hz=0.0, compression=0.0)
        out = model.drive(0.1 * tone(500.0), 8000.0)
        assert np.max(np.abs(out)) == pytest.approx(0.2, rel=0.05)

    def test_low_frequency_rolloff(self):
        model = SpeakerModel(drive_gain=1.0, rolloff_hz=400.0, compression=0.0)
        low = model.drive(tone(50.0), 8000.0)
        high = model.drive(tone(1500.0), 8000.0)
        assert np.std(low[500:-500]) < 0.1 * np.std(high[500:-500])

    def test_compression_limits_peaks(self):
        model = SpeakerModel(drive_gain=1.0, rolloff_hz=0.0, compression=0.5)
        out = model.drive(5.0 * tone(1000.0), 8000.0)
        assert np.max(np.abs(out)) < 1.0

    def test_compression_near_linear_at_low_level(self):
        model = SpeakerModel(drive_gain=1.0, rolloff_hz=0.0, compression=0.3)
        x = 0.01 * tone(1000.0)
        out = model.drive(x, 8000.0)
        assert np.allclose(out, x, rtol=0.02, atol=1e-4)

    def test_empty_signal(self):
        model = loudspeaker_model()
        assert model.drive(np.zeros(0), 8000.0).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            loudspeaker_model().drive(np.zeros((2, 2)), 8000.0)


class TestFactories:
    def test_ear_much_weaker_than_loudspeaker(self):
        loud = loudspeaker_model(1.0)
        ear = ear_speaker_model()
        assert ear.drive_gain < 0.2 * loud.drive_gain

    def test_custom_gain(self):
        assert loudspeaker_model(0.5).drive_gain == 0.5
        assert ear_speaker_model(0.1).drive_gain == 0.1
