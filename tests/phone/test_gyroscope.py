"""Tests for repro.phone.gyroscope and the sensor-choice channel option."""

import numpy as np
import pytest

from repro.phone.channel import VibrationChannel
from repro.phone.gyroscope import Gyroscope


def tone(freq, fs=8000.0, duration=1.0, amp=0.1):
    t = np.arange(int(duration * fs)) / fs
    return amp * np.sin(2 * np.pi * freq * t)


class TestGyroscope:
    def test_output_rate(self):
        gyro = Gyroscope(fs=420.0)
        out = gyro.sample(np.zeros(8000), 8000.0, np.random.default_rng(0))
        assert out.size == pytest.approx(420, abs=2)

    def test_no_gravity_offset(self):
        gyro = Gyroscope(fs=420.0, noise_rms=0.0, lsb=0.0)
        out = gyro.sample(np.zeros(8000), 8000.0, np.random.default_rng(0))
        assert np.allclose(out, 0.0)

    def test_weaker_response_than_accelerometer(self):
        from repro.phone.accelerometer import Accelerometer

        vibration = tone(300.0, amp=1.0)
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        accel = Accelerometer(fs=420.0, noise_rms=0.0, lsb=0.0,
                              include_gravity=False)
        gyro = Gyroscope(fs=420.0, noise_rms=0.0, lsb=0.0)
        a = accel.sample(vibration, 8000.0, rng1)
        g = gyro.sample(vibration, 8000.0, rng2)
        assert np.std(g) < 0.1 * np.std(a)

    def test_quantisation(self):
        gyro = Gyroscope(fs=420.0, noise_rms=0.0, lsb=0.01)
        out = gyro.sample(tone(60.0, amp=5.0), 8000.0, np.random.default_rng(0))
        assert np.allclose(out, np.round(out / 0.01) * 0.01, atol=1e-12)

    def test_invalid_coupling(self):
        with pytest.raises(ValueError):
            Gyroscope(rotational_coupling=1.5)

    def test_shape_mismatch(self):
        gyro = Gyroscope()
        with pytest.raises(ValueError):
            gyro.sample(np.zeros(100), 8000.0, np.random.default_rng(0),
                        np.zeros(50))


class TestChannelSensorOption:
    def test_default_is_accelerometer(self):
        channel = VibrationChannel("oneplus7t")
        out = channel.transmit(np.zeros(8000), 8000.0)
        assert out.mean() == pytest.approx(9.81, abs=0.5)

    def test_gyroscope_channel(self):
        channel = VibrationChannel("oneplus7t", sensor="gyroscope")
        out = channel.transmit(np.zeros(8000), 8000.0)
        assert abs(out.mean()) < 0.1  # no gravity on a gyro

    def test_gyroscope_weaker_speech_signature(self):
        x = tone(500.0, amp=0.3) + tone(900.0, amp=0.2)
        accel = VibrationChannel("oneplus7t").transmit(x, 8000.0)
        gyro = VibrationChannel("oneplus7t", sensor="gyroscope").transmit(x, 8000.0)
        assert np.std(gyro - gyro.mean()) < 0.5 * np.std(accel - accel.mean())

    def test_unknown_sensor(self):
        with pytest.raises(ValueError, match="sensor"):
            VibrationChannel("oneplus7t", sensor="magnetometer")
