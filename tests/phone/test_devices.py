"""Tests for repro.phone.devices."""

import pytest

from repro.phone.devices import DEVICES, device_names, get_device


class TestDeviceRegistry:
    def test_six_devices(self):
        assert len(DEVICES) == 6

    def test_paper_device_set(self):
        expected = {
            "oneplus7t",
            "oneplus9",
            "pixel5",
            "galaxys10",
            "galaxys21",
            "galaxys21ultra",
        }
        assert set(DEVICES) == expected

    def test_all_stereo(self):
        """Section V-A: all evaluated phones have stereo speakers."""
        assert all(d.stereo_ear_speaker for d in DEVICES.values())

    def test_lookup_by_alias(self):
        assert get_device("OnePlus 7T").name == "oneplus7t"
        assert get_device("Samsung Galaxy S21 Ultra").name == "galaxys21ultra"

    def test_lookup_canonical(self):
        assert get_device("pixel5").display_name == "Google Pixel 5"

    def test_unknown_device(self):
        with pytest.raises(ValueError, match="unknown device"):
            get_device("iphone14")

    def test_device_names_sorted(self):
        names = device_names()
        assert list(names) == sorted(names)


class TestDevicePhysics:
    def test_ear_much_weaker_than_loudspeaker(self):
        for device in DEVICES.values():
            assert device.ear_gain < 0.3 * device.loud_gain

    def test_oneplus_7t_best_coupling(self):
        """OnePlus 7T tops Table V; its profile must reflect that."""
        op7t = get_device("oneplus7t")
        others = [d for d in DEVICES.values() if d.name != "oneplus7t"]
        assert all(op7t.loud_gain >= d.loud_gain for d in others)
        assert all(op7t.noise_rms <= d.noise_rms for d in others)

    def test_oneplus_ear_speakers_strongest(self):
        """Table VI only evaluates OnePlus ear speakers (most powerful)."""
        op = {get_device("oneplus7t").ear_gain, get_device("oneplus9").ear_gain}
        rest = [
            d.ear_gain
            for d in DEVICES.values()
            if d.name not in ("oneplus7t", "oneplus9")
        ]
        assert min(op) > max(rest)

    def test_sampling_rates_plausible(self):
        for device in DEVICES.values():
            assert 200.0 < device.accel_fs <= 500.0

    def test_positive_parameters(self):
        for device in DEVICES.values():
            assert device.noise_rms > 0
            assert device.resonance_hz > 0
            assert device.q_factor > 0
