"""Tests for repro.ml.feature_selection."""

import numpy as np
import pytest

from repro.ml.feature_selection import InfoGainSelector, rank_features


def labelled_matrix(n=200, seed=0):
    """Three columns: strong signal, weak signal, pure noise."""
    rng = np.random.default_rng(seed)
    y = np.repeat(["a", "b"], n // 2)
    strong = np.concatenate([np.zeros(n // 2), np.ones(n // 2)])
    weak = strong + rng.normal(0, 1.2, n)
    noise = rng.normal(size=n)
    return np.column_stack([noise, strong, weak]), y


class TestRankFeatures:
    def test_ordering(self):
        X, y = labelled_matrix()
        ranking = rank_features(X, y, ["noise", "strong", "weak"])
        names = [name for name, _ in ranking]
        assert names[0] == "strong"
        assert names[-1] == "noise"

    def test_default_names(self):
        X, y = labelled_matrix()
        ranking = rank_features(X, y)
        assert {name for name, _ in ranking} == {"f0", "f1", "f2"}

    def test_gains_nonnegative_sorted(self):
        X, y = labelled_matrix()
        gains = [gain for _, gain in rank_features(X, y)]
        assert all(g >= 0 for g in gains)
        assert gains == sorted(gains, reverse=True)

    def test_name_mismatch(self):
        X, y = labelled_matrix()
        with pytest.raises(ValueError):
            rank_features(X, y, ["just-one"])


class TestInfoGainSelector:
    def test_selects_informative_columns(self):
        X, y = labelled_matrix()
        selector = InfoGainSelector(k=2).fit(X, y)
        assert 1 in selector.selected_indices_  # "strong"
        assert 0 not in selector.selected_indices_  # "noise"

    def test_transform_shape(self):
        X, y = labelled_matrix()
        Z = InfoGainSelector(k=2).fit_transform(X, y)
        assert Z.shape == (X.shape[0], 2)

    def test_column_order_preserved(self):
        X, y = labelled_matrix()
        selector = InfoGainSelector(k=2).fit(X, y)
        assert list(selector.selected_indices_) == sorted(
            selector.selected_indices_
        )

    def test_k_larger_than_columns(self):
        X, y = labelled_matrix()
        selector = InfoGainSelector(k=10).fit(X, y)
        assert selector.selected_indices_.size == 3

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            InfoGainSelector(k=1).transform(np.ones((2, 3)))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            InfoGainSelector(k=0)

    def test_narrow_transform_rejected(self):
        X, y = labelled_matrix()
        selector = InfoGainSelector(k=3).fit(X, y)
        with pytest.raises(ValueError):
            selector.transform(np.ones((4, 2)))

    def test_selection_keeps_accuracy(self):
        """Dropping the noise column should not hurt a classifier."""
        from repro.ml.logistic import LogisticRegression
        from repro.ml.preprocessing import train_test_split

        X, y = labelled_matrix(400)
        X_train, X_test, y_train, y_test = train_test_split(X, y, 0.25, 0)
        selector = InfoGainSelector(k=2).fit(X_train, y_train)
        full = LogisticRegression().fit(X_train, y_train).score(X_test, y_test)
        reduced = (
            LogisticRegression()
            .fit(selector.transform(X_train), y_train)
            .score(selector.transform(X_test), y_test)
        )
        assert reduced >= full - 0.05
