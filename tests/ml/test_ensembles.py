"""Tests for repro.ml.forest, repro.ml.subspace, repro.ml.multiclass, repro.ml.lmt."""

import numpy as np
import pytest

from repro.ml.forest import RandomForest
from repro.ml.lmt import LogisticModelTree
from repro.ml.logistic import LogisticRegression
from repro.ml.multiclass import OneVsRestClassifier
from repro.ml.subspace import RandomSubspace
from repro.ml.tree import DecisionTree


def blobs(n_per_class=50, k=3, d=6, spread=0.8, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, size=(k, d))
    X = np.vstack(
        [centers[i] + spread * rng.normal(size=(n_per_class, d)) for i in range(k)]
    )
    y = np.repeat([f"c{i}" for i in range(k)], n_per_class)
    return X, y


def xor_data(n=240, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = np.where((X[:, 0] > 0) ^ (X[:, 1] > 0), "odd", "even")
    return X, y


class TestRandomForest:
    def test_accuracy_on_blobs(self):
        X, y = blobs()
        model = RandomForest(n_estimators=15, seed=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_solves_xor(self):
        X, y = xor_data()
        model = RandomForest(n_estimators=20, seed=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_proba_valid(self):
        X, y = blobs()
        P = RandomForest(n_estimators=10, seed=0).fit(X, y).predict_proba(X)
        assert np.allclose(P.sum(axis=1), 1.0)
        assert np.all((P >= 0) & (P <= 1))

    def test_deterministic_given_seed(self):
        X, y = blobs()
        a = RandomForest(n_estimators=8, seed=3).fit(X, y).predict(X)
        b = RandomForest(n_estimators=8, seed=3).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_every_class_predictable(self):
        """Bootstraps are patched to include all classes."""
        X, y = blobs(n_per_class=8, k=5)
        model = RandomForest(n_estimators=5, seed=0).fit(X, y)
        assert model.predict_proba(X).shape[1] == 5

    def test_invalid_estimators(self):
        with pytest.raises(ValueError):
            RandomForest(n_estimators=0)


class TestRandomSubspace:
    def test_accuracy_on_blobs(self):
        X, y = blobs()
        model = RandomSubspace(n_estimators=10, seed=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_members_use_feature_subsets(self):
        X, y = blobs(d=10)
        model = RandomSubspace(n_estimators=5, subspace_fraction=0.3, seed=0).fit(X, y)
        for features, _ in model.members_:
            assert features.size == 3

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            RandomSubspace(subspace_fraction=0.0)

    def test_full_fraction_uses_all_features(self):
        X, y = blobs(d=4)
        model = RandomSubspace(n_estimators=3, subspace_fraction=1.0, seed=0).fit(X, y)
        for features, _ in model.members_:
            assert features.size == 4


class TestOneVsRest:
    def test_accuracy_on_blobs(self):
        X, y = blobs()
        model = OneVsRestClassifier().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_one_estimator_per_class(self):
        X, y = blobs(k=4)
        model = OneVsRestClassifier().fit(X, y)
        assert len(model.estimators_) == 4

    def test_custom_base(self):
        X, y = blobs()
        model = OneVsRestClassifier(base=DecisionTree(max_depth=4)).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_proba_normalised(self):
        X, y = blobs()
        P = OneVsRestClassifier().fit(X, y).predict_proba(X)
        assert np.allclose(P.sum(axis=1), 1.0)


class TestLogisticModelTree:
    def test_accuracy_on_blobs(self):
        X, y = blobs()
        model = LogisticModelTree().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_beats_plain_logistic_on_xor(self):
        """Leaf logistic models inherit the tree's non-linear partition."""
        X, y = xor_data(400)
        lmt_score = LogisticModelTree(max_depth=2).fit(X, y).score(X, y)
        logistic_score = LogisticRegression().fit(X, y).score(X, y)
        assert lmt_score > logistic_score + 0.2

    def test_proba_valid(self):
        X, y = blobs()
        P = LogisticModelTree().fit(X, y).predict_proba(X)
        assert np.allclose(P.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(P >= 0)

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            LogisticModelTree(smoothing=1.0)

    def test_small_dataset_falls_back_to_priors(self):
        X = np.vstack([np.zeros((4, 2)), np.ones((4, 2))])
        y = np.array(["a"] * 4 + ["b"] * 4)
        model = LogisticModelTree(min_leaf_fraction=0.9).fit(X, y)
        assert model.score(X, y) == 1.0  # priors per pure leaf suffice
