"""Tests for repro.ml.crossval."""

import warnings

import numpy as np
import pytest

from repro.ml.crossval import StratifiedKFold, cross_val_confusion, cross_val_score
from repro.ml.logistic import LogisticRegression


def blobs(n_per_class=30, k=3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 4.0, size=(k, 4))
    X = np.vstack(
        [centers[i] + 0.5 * rng.normal(size=(n_per_class, 4)) for i in range(k)]
    )
    y = np.repeat([f"c{i}" for i in range(k)], n_per_class)
    return X, y


class TestStratifiedKFold:
    def test_fold_count(self):
        _, y = blobs()
        folds = list(StratifiedKFold(5).split(y))
        assert len(folds) == 5

    def test_partitions_cover_everything(self):
        _, y = blobs()
        seen = np.zeros(y.shape[0], dtype=int)
        for _, test_idx in StratifiedKFold(5).split(y):
            seen[test_idx] += 1
        assert np.all(seen == 1)

    def test_train_test_disjoint(self):
        _, y = blobs()
        for train_idx, test_idx in StratifiedKFold(4).split(y):
            assert not set(train_idx) & set(test_idx)

    def test_stratification(self):
        _, y = blobs(n_per_class=30, k=3)
        for _, test_idx in StratifiedKFold(5).split(y):
            _, counts = np.unique(y[test_idx], return_counts=True)
            assert counts.max() - counts.min() <= 1

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(StratifiedKFold(10).split(np.array(["a", "b"])))

    def test_invalid_splits(self):
        with pytest.raises(ValueError):
            StratifiedKFold(1)

    def test_deterministic(self):
        _, y = blobs()
        a = [tuple(t) for _, t in StratifiedKFold(5, seed=2).split(y)]
        b = [tuple(t) for _, t in StratifiedKFold(5, seed=2).split(y)]
        assert a == b

    def test_tiny_class_warns_on_empty_folds(self):
        """Skipped folds must be loud, not silent (the Fig. 6b footgun)."""
        y = np.array(["a", "a", "b"])
        with pytest.warns(RuntimeWarning, match="2 of 3 folds"):
            folds = list(StratifiedKFold(3).split(y))
        assert len(folds) == 2  # fewer than requested, but announced
        for train_idx, test_idx in folds:
            assert test_idx.size > 0
            assert not set(train_idx) & set(test_idx)

    def test_tiny_class_strict_raises(self):
        y = np.array(["a", "a", "b"])
        with pytest.raises(ValueError, match="folds"):
            list(StratifiedKFold(3, strict=True).split(y))

    def test_full_folds_no_warning(self):
        _, y = blobs()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            folds = list(StratifiedKFold(5).split(y))
        assert len(folds) == 5


class TestCrossValScore:
    def test_scores_high_on_separable(self):
        X, y = blobs()
        scores = cross_val_score(LogisticRegression(), X, y, n_splits=5)
        assert len(scores) == 5
        assert np.mean(scores) > 0.9

    def test_uses_clones(self):
        X, y = blobs()
        model = LogisticRegression()
        cross_val_score(model, X, y, n_splits=3)
        assert model.classes_ is None  # original never fitted


class TestCrossValConfusion:
    def test_pooled_matrix(self):
        X, y = blobs()
        M, labels, acc = cross_val_confusion(LogisticRegression(), X, y, n_splits=5)
        assert M.sum() == y.shape[0]
        assert acc > 0.9
        assert list(labels) == sorted(set(y))
