"""Tests for repro.ml.preprocessing."""

import numpy as np
import pytest

from repro.ml.preprocessing import (
    LabelEncoder,
    StandardScaler,
    clean_features,
    train_test_split,
)


class TestCleanFeatures:
    def test_drops_nan_rows(self):
        X = np.array([[1.0, 2.0], [np.nan, 3.0], [4.0, 5.0]])
        y = np.array(["a", "b", "c"])
        Xc, yc, mask = clean_features(X, y)
        assert Xc.shape == (2, 2)
        assert list(yc) == ["a", "c"]
        assert list(mask) == [True, False, True]

    def test_drops_inf_rows(self):
        X = np.array([[1.0, np.inf], [2.0, 3.0]])
        Xc, _, _ = clean_features(X)
        assert Xc.shape == (1, 2)

    def test_no_labels(self):
        X = np.ones((3, 2))
        Xc, yc, mask = clean_features(X)
        assert yc is None
        assert mask.all()

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            clean_features(np.ones((3, 2)), np.array(["a"]))

    def test_dropped_rows_hit_counter(self):
        """Silent training-set shrinkage must show up in the metrics."""
        from repro.obs import metrics, reset_observability

        reset_observability()
        try:
            X = np.ones((5, 3))
            X[1, 0] = np.nan
            X[4, 2] = np.inf
            clean_features(X)
            assert metrics().counter_value(
                "preprocessing.rows_dropped",
                stage="clean_features",
                reason="nonfinite",
            ) == 2
        finally:
            reset_observability()

    def test_no_drops_no_counter(self):
        from repro.obs import metrics, reset_observability

        reset_observability()
        try:
            clean_features(np.ones((4, 2)))
            assert metrics().counter_total("preprocessing.rows_dropped") == 0
        finally:
            reset_observability()

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            clean_features(np.ones(5))


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(500, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_maps_to_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)

    def test_transform_uses_training_stats(self):
        scaler = StandardScaler().fit(np.zeros((5, 2)) + [[1.0, 2.0]])
        Z = scaler.transform(np.array([[1.0, 2.0]]))
        assert np.allclose(Z, 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))


class TestLabelEncoder:
    def test_round_trip(self):
        y = np.array(["sad", "angry", "sad", "happy"])
        enc = LabelEncoder()
        codes = enc.fit_transform(y)
        assert codes.dtype == int
        assert list(enc.inverse_transform(codes)) == list(y)

    def test_codes_contiguous(self):
        enc = LabelEncoder().fit(["c", "a", "b"])
        codes = enc.transform(["a", "b", "c"])
        assert sorted(codes) == [0, 1, 2]

    def test_unseen_label(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError, match="unseen label"):
            enc.transform(["z"])

    def test_bad_code(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            enc.inverse_transform([5])

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(["a"])


class TestTrainTestSplit:
    def _data(self, n=100):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(n, 3))
        y = np.array((["a"] * (n // 2)) + (["b"] * (n // 2)))
        return X, y

    def test_sizes(self):
        X, y = self._data()
        X_train, X_test, y_train, y_test = train_test_split(X, y, 0.2, 0)
        assert X_test.shape[0] == 20
        assert X_train.shape[0] == 80

    def test_stratified(self):
        X, y = self._data()
        _, _, _, y_test = train_test_split(X, y, 0.2, 0)
        assert np.sum(y_test == "a") == np.sum(y_test == "b")

    def test_disjoint_and_complete(self):
        X, y = self._data(40)
        X_train, X_test, _, _ = train_test_split(X, y, 0.25, 1)
        combined = np.vstack([X_train, X_test])
        assert combined.shape[0] == 40
        # Every original row appears exactly once.
        assert len({tuple(row) for row in combined}) == 40

    def test_deterministic(self):
        X, y = self._data()
        a = train_test_split(X, y, 0.2, 7)
        b = train_test_split(X, y, 0.2, 7)
        assert np.array_equal(a[1], b[1])

    def test_small_class_keeps_train_member(self):
        X = np.arange(8.0).reshape(4, 2)
        y = np.array(["a", "a", "a", "b"])
        X_train, X_test, y_train, y_test = train_test_split(X, y, 0.5, 0)
        assert "b" in y_train or "b" in y_test

    def test_invalid_fraction(self):
        X, y = self._data()
        with pytest.raises(ValueError):
            train_test_split(X, y, 1.5)

    def test_mismatched(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((4, 2)), np.ones(3))
