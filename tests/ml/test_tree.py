"""Tests for repro.ml.tree."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTree, _impurity_curve


def xor_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = np.where((X[:, 0] > 0) ^ (X[:, 1] > 0), "odd", "even")
    return X, y


def _serial_best_split(tree, X, codes, k):
    """Reference split search: one feature at a time, in order.

    Mirrors the pre-vectorisation algorithm (first-position /
    first-feature tie-breaking) so the fast path can be checked against
    it exactly.
    """
    n, d = X.shape
    best = (np.inf, -1, 0.0)
    for j in range(d):
        order = np.argsort(X[:, j], kind="stable")
        values = X[order, j]
        curve = _impurity_curve(codes[order], k, tree.criterion)
        for i in range(n - 1):
            if values[i] >= values[i + 1]:
                continue
            position = i + 1
            if position < tree.min_samples_leaf:
                continue
            if position > n - tree.min_samples_leaf:
                continue
            if curve[i] < best[0]:
                best = (float(curve[i]), j, 0.5 * (values[i] + values[i + 1]))
    return best


class TestVectorisedSplitSearch:
    """The batched split search must match the serial reference exactly."""

    @pytest.mark.parametrize("criterion", ["gini", "entropy"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_serial_reference(self, criterion, seed):
        rng = np.random.default_rng(seed)
        # Small integer grid: plenty of duplicate values and impurity
        # ties, the cases where tie-breaking order actually matters.
        X = rng.integers(0, 4, size=(40, 5)).astype(float)
        codes = rng.integers(0, 3, size=40)
        tree = DecisionTree(criterion=criterion, min_samples_leaf=2)
        fast = tree._best_split(X, codes, 3, np.random.default_rng(0))
        ref = _serial_best_split(tree, X, codes, 3)
        assert fast[1] == ref[1]  # same feature
        assert fast[2] == pytest.approx(ref[2])  # same threshold
        assert fast[0] == pytest.approx(ref[0])  # same impurity

    def test_no_valid_split_reported(self):
        tree = DecisionTree()
        X = np.ones((8, 3))  # constant features: nothing to split on
        codes = np.array([0, 1] * 4)
        impurity, feature, _ = tree._best_split(
            X, codes, 2, np.random.default_rng(0)
        )
        assert feature == -1
        assert impurity == np.inf


class TestDecisionTree:
    def test_fits_xor(self):
        """XOR is non-linear: trees must solve it (logistic cannot)."""
        X, y = xor_data()
        tree = DecisionTree(max_depth=4).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_pure_leaves_on_training_data(self):
        X, y = xor_data(100)
        tree = DecisionTree().fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_max_depth_respected(self):
        X, y = xor_data(300)
        tree = DecisionTree(max_depth=3).fit(X, y)
        assert tree.depth() <= 3

    def test_depth_zero_like_stump(self):
        X, y = xor_data()
        tree = DecisionTree(max_depth=1).fit(X, y)
        assert tree.depth() <= 1

    def test_min_samples_leaf(self):
        X, y = xor_data(100)
        tree = DecisionTree(min_samples_leaf=20).fit(X, y)

        def smallest_leaf(node, X_sub, y_sub):
            if node.is_leaf:
                return len(y_sub)
            mask = X_sub[:, node.feature] <= node.threshold
            return min(
                smallest_leaf(node.left, X_sub[mask], y_sub[mask]),
                smallest_leaf(node.right, X_sub[~mask], y_sub[~mask]),
            )

        assert smallest_leaf(tree.root_, X, y) >= 20

    def test_proba_shape_and_sum(self):
        X, y = xor_data()
        tree = DecisionTree(max_depth=5).fit(X, y)
        P = tree.predict_proba(X)
        assert P.shape == (X.shape[0], 2)
        assert np.allclose(P.sum(axis=1), 1.0)

    def test_entropy_criterion(self):
        X, y = xor_data()
        tree = DecisionTree(max_depth=4, criterion="entropy").fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_invalid_criterion(self):
        with pytest.raises(ValueError):
            DecisionTree(criterion="chi2")

    def test_constant_features_fallback_to_leaf(self):
        X = np.ones((20, 3))
        y = np.array(["a"] * 10 + ["b"] * 10)
        tree = DecisionTree().fit(X, y)
        P = tree.predict_proba(X[:2])
        assert np.allclose(P, 0.5)

    def test_max_features_randomisation(self):
        X, y = xor_data(300)
        a = DecisionTree(max_features=1, rng_seed=1).fit(X, y)
        b = DecisionTree(max_features=1, rng_seed=2).fit(X, y)
        # Different feature subsets at the root usually give different trees.
        assert (
            a.root_.feature != b.root_.feature
            or a.root_.threshold != b.root_.threshold
            or a.depth() != b.depth()
        )

    def test_multiclass(self):
        rng = np.random.default_rng(3)
        X = np.vstack([rng.normal(i * 3, 0.4, size=(40, 2)) for i in range(4)])
        y = np.repeat(list("abcd"), 40)
        tree = DecisionTree(max_depth=6).fit(X, y)
        assert tree.score(X, y) > 0.95
