"""Tests for repro.ml.tree."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTree


def xor_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = np.where((X[:, 0] > 0) ^ (X[:, 1] > 0), "odd", "even")
    return X, y


class TestDecisionTree:
    def test_fits_xor(self):
        """XOR is non-linear: trees must solve it (logistic cannot)."""
        X, y = xor_data()
        tree = DecisionTree(max_depth=4).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_pure_leaves_on_training_data(self):
        X, y = xor_data(100)
        tree = DecisionTree().fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_max_depth_respected(self):
        X, y = xor_data(300)
        tree = DecisionTree(max_depth=3).fit(X, y)
        assert tree.depth() <= 3

    def test_depth_zero_like_stump(self):
        X, y = xor_data()
        tree = DecisionTree(max_depth=1).fit(X, y)
        assert tree.depth() <= 1

    def test_min_samples_leaf(self):
        X, y = xor_data(100)
        tree = DecisionTree(min_samples_leaf=20).fit(X, y)

        def smallest_leaf(node, X_sub, y_sub):
            if node.is_leaf:
                return len(y_sub)
            mask = X_sub[:, node.feature] <= node.threshold
            return min(
                smallest_leaf(node.left, X_sub[mask], y_sub[mask]),
                smallest_leaf(node.right, X_sub[~mask], y_sub[~mask]),
            )

        assert smallest_leaf(tree.root_, X, y) >= 20

    def test_proba_shape_and_sum(self):
        X, y = xor_data()
        tree = DecisionTree(max_depth=5).fit(X, y)
        P = tree.predict_proba(X)
        assert P.shape == (X.shape[0], 2)
        assert np.allclose(P.sum(axis=1), 1.0)

    def test_entropy_criterion(self):
        X, y = xor_data()
        tree = DecisionTree(max_depth=4, criterion="entropy").fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_invalid_criterion(self):
        with pytest.raises(ValueError):
            DecisionTree(criterion="chi2")

    def test_constant_features_fallback_to_leaf(self):
        X = np.ones((20, 3))
        y = np.array(["a"] * 10 + ["b"] * 10)
        tree = DecisionTree().fit(X, y)
        P = tree.predict_proba(X[:2])
        assert np.allclose(P, 0.5)

    def test_max_features_randomisation(self):
        X, y = xor_data(300)
        a = DecisionTree(max_features=1, rng_seed=1).fit(X, y)
        b = DecisionTree(max_features=1, rng_seed=2).fit(X, y)
        # Different feature subsets at the root usually give different trees.
        assert (
            a.root_.feature != b.root_.feature
            or a.root_.threshold != b.root_.threshold
            or a.depth() != b.depth()
        )

    def test_multiclass(self):
        rng = np.random.default_rng(3)
        X = np.vstack([rng.normal(i * 3, 0.4, size=(40, 2)) for i in range(4)])
        y = np.repeat(list("abcd"), 40)
        tree = DecisionTree(max_depth=6).fit(X, y)
        assert tree.score(X, y) > 0.95
