"""Tests for repro.ml.metrics."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy_score, classification_report, confusion_matrix


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score(["a", "b"], ["a", "b"]) == 1.0

    def test_half(self):
        assert accuracy_score(["a", "b"], ["a", "a"]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score(["a"], ["a", "b"])

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        y = ["a", "b", "c", "a"]
        M, labels = confusion_matrix(y, y)
        assert np.trace(M) == 4
        assert M.sum() == 4

    def test_rows_are_true_class(self):
        M, labels = confusion_matrix(["a", "a"], ["a", "b"], labels=["a", "b"])
        assert M[0, 0] == 1 and M[0, 1] == 1
        assert M[1].sum() == 0

    def test_explicit_label_order(self):
        M, labels = confusion_matrix(["b"], ["b"], labels=["b", "a"])
        assert list(labels) == ["b", "a"]
        assert M[0, 0] == 1

    def test_unknown_label_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(["a"], ["z"], labels=["a", "b"])

    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        y_true = rng.choice(list("abc"), 100)
        y_pred = rng.choice(list("abc"), 100)
        M, _ = confusion_matrix(y_true, y_pred)
        assert M.sum() == 100


class TestClassificationReport:
    def test_perfect_scores(self):
        y = ["a", "b", "a"]
        report = classification_report(y, y)
        assert report["accuracy"] == 1.0
        assert report["a"]["precision"] == 1.0
        assert report["a"]["recall"] == 1.0
        assert report["a"]["f1"] == 1.0
        assert report["a"]["support"] == 2

    def test_zero_division_safe(self):
        report = classification_report(["a", "a"], ["b", "b"], labels=["a", "b"])
        assert report["a"]["recall"] == 0.0
        assert report["b"]["precision"] == 0.0

    def test_f1_harmonic_mean(self):
        report = classification_report(
            ["a", "a", "b", "b"], ["a", "b", "b", "b"], labels=["a", "b"]
        )
        p = report["b"]["precision"]
        r = report["b"]["recall"]
        assert report["b"]["f1"] == pytest.approx(2 * p * r / (p + r))
