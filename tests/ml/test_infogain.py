"""Tests for repro.ml.infogain."""

import numpy as np
import pytest

from repro.ml.infogain import entropy, information_gain, information_gain_table


class TestEntropy:
    def test_uniform_two_classes(self):
        assert entropy(np.array(["a", "b", "a", "b"])) == pytest.approx(1.0)

    def test_pure(self):
        assert entropy(np.array(["a", "a", "a"])) == pytest.approx(0.0)

    def test_uniform_k_classes(self):
        y = np.repeat(list("abcdefg"), 10)
        assert entropy(y) == pytest.approx(np.log2(7))

    def test_empty(self):
        with pytest.raises(ValueError):
            entropy(np.array([]))


class TestInformationGain:
    def test_perfect_predictor(self):
        y = np.repeat(["a", "b"], 100)
        x = np.concatenate([np.zeros(100), np.ones(100)])
        assert information_gain(x, y) == pytest.approx(1.0, abs=0.05)

    def test_useless_predictor(self):
        rng = np.random.default_rng(0)
        y = np.repeat(["a", "b"], 500)
        x = rng.normal(size=1000)
        assert information_gain(x, y) < 0.05

    def test_nonnegative(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            x = rng.normal(size=100)
            y = rng.choice(["a", "b", "c"], 100)
            assert information_gain(x, y) >= 0.0

    def test_handles_nan_values(self):
        y = np.repeat(["a", "b"], 50)
        x = np.concatenate([np.full(50, np.nan), np.ones(50)])
        # NaN presence pattern itself is informative here.
        assert information_gain(x, y) > 0.9

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            information_gain(np.ones(5), np.array(["a"] * 4))

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            information_gain(np.ones(5), np.array(["a"] * 5), n_bins=1)

    def test_monotone_transform_invariance(self):
        """Equal-frequency binning is invariant to monotone transforms."""
        rng = np.random.default_rng(2)
        y = np.repeat(["a", "b"], 200)
        x = np.concatenate([rng.normal(0, 1, 200), rng.normal(2, 1, 200)])
        g1 = information_gain(x, y)
        g2 = information_gain(np.exp(x), y)
        assert g1 == pytest.approx(g2, abs=1e-9)


class TestInformationGainTable:
    def test_keys_and_ordering(self):
        rng = np.random.default_rng(3)
        y = np.repeat(["a", "b"], 100)
        informative = np.concatenate([np.zeros(100), np.ones(100)])
        noise = rng.normal(size=200)
        X = np.column_stack([informative, noise])
        table = information_gain_table(X, y, ["signal", "noise"])
        assert set(table) == {"signal", "noise"}
        assert table["signal"] > table["noise"] + 0.5

    def test_name_count_mismatch(self):
        with pytest.raises(ValueError):
            information_gain_table(np.ones((5, 2)), np.array(["a"] * 5), ["only-one"])
