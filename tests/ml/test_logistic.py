"""Tests for repro.ml.logistic."""

import numpy as np
import pytest

from repro.ml.logistic import LogisticRegression, softmax


def blobs(n_per_class=60, k=3, d=4, spread=0.5, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, size=(k, d))
    X = np.vstack(
        [centers[i] + spread * rng.normal(size=(n_per_class, d)) for i in range(k)]
    )
    y = np.repeat([f"class{i}" for i in range(k)], n_per_class)
    return X, y


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        P = softmax(rng.normal(size=(10, 5)))
        assert np.allclose(P.sum(axis=1), 1.0)

    def test_stable_with_large_logits(self):
        P = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(P).all()
        assert P[0, 0] == pytest.approx(1.0)


class TestLogisticRegression:
    def test_separable_blobs(self):
        X, y = blobs()
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_binary(self):
        X, y = blobs(k=2)
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_divergence_recovery_with_huge_lr(self):
        """An absurd step size must trigger backtracking, not blow up.

        lr=50 on these blobs provably overshoots (the loss increases
        mid-run); the divergence branch has to roll back to the last good
        iterate and still reach the separable optimum.
        """
        X, y = blobs()
        model = LogisticRegression(lr=50.0).fit(X, y)
        assert np.isfinite(model.coef_).all()
        assert np.isfinite(model.intercept_).all()
        assert model.score(X, y) > 0.95

    def test_divergence_rolls_back_to_pre_step_weights(self):
        """A rejected step must leave the weights exactly untouched.

        Spiking every loss after the first forces the optimiser to reject
        every later step; the final weights must therefore equal a plain
        one-iteration fit. (The historical bug committed the overshot
        step before retrying, so the diverged weights leaked out.)
        """

        class SpikedLogistic(LogisticRegression):
            def __init__(self, **kwargs):
                super().__init__(**kwargs)
                self._calls = 0

            def _loss_grad(self, X, onehot, W, b):
                loss, grad_W, grad_b = super()._loss_grad(X, onehot, W, b)
                self._calls += 1
                if self._calls > 1:
                    return loss + 1e6, grad_W, grad_b
                return loss, grad_W, grad_b

        X, y = blobs()
        spiked = SpikedLogistic(lr=0.5, max_iter=300).fit(X, y)
        one_step = LogisticRegression(lr=0.5, max_iter=1).fit(X, y)
        assert spiked._calls > 2  # the divergence branch really ran
        np.testing.assert_array_equal(spiked.coef_, one_step.coef_)
        np.testing.assert_array_equal(spiked.intercept_, one_step.intercept_)

    def test_predict_proba_valid(self):
        X, y = blobs()
        model = LogisticRegression().fit(X, y)
        P = model.predict_proba(X)
        assert P.shape == (X.shape[0], 3)
        assert np.allclose(P.sum(axis=1), 1.0)
        assert np.all(P >= 0)

    def test_string_labels_round_trip(self):
        X, y = blobs()
        model = LogisticRegression().fit(X, y)
        assert set(model.predict(X)) <= set(y)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.ones((2, 3)))

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.ones((5, 2)), np.array(["a"] * 5))

    def test_nan_features_rejected(self):
        X, y = blobs()
        X[0, 0] = np.nan
        with pytest.raises(ValueError):
            LogisticRegression().fit(X, y)

    def test_ridge_shrinks_weights(self):
        X, y = blobs()
        loose = LogisticRegression(ridge=1e-6).fit(X, y)
        tight = LogisticRegression(ridge=10.0).fit(X, y)
        assert np.abs(tight.coef_).sum() < np.abs(loose.coef_).sum()

    def test_scale_invariance_via_internal_standardisation(self):
        X, y = blobs()
        a = LogisticRegression().fit(X, y).score(X, y)
        b = LogisticRegression().fit(X * 1000.0, y).score(X * 1000.0, y)
        assert a == pytest.approx(b, abs=0.05)

    def test_clone_unfitted(self):
        model = LogisticRegression(ridge=0.5, max_iter=10)
        cloned = model.clone()
        assert cloned.ridge == 0.5
        assert cloned.max_iter == 10
        assert cloned.classes_ is None

    def test_clone_after_fit_is_unfitted(self):
        X, y = blobs()
        model = LogisticRegression().fit(X, y)
        assert model.clone().classes_ is None
