"""Parallel fold-engine tests: executor identity, spans, pool reuse.

The contract under test (mirroring the collection engine): ``serial``,
``thread`` and ``process`` executors produce *identical* per-fold
results at any worker count, worker spans re-parent under the
dispatcher, and the trace stays balanced even when a fold raises.
"""

import numpy as np
import pytest

from repro.ml.crossval import StratifiedKFold, cross_val_confusion, cross_val_score
from repro.ml.forest import RandomForest
from repro.ml.logistic import LogisticRegression
from repro.obs import reset_observability, trace, tracer
from repro.parallel import ExecutorPool


def blobs(n_per_class=30, k=3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 4.0, size=(k, 4))
    X = np.vstack(
        [centers[i] + 0.5 * rng.normal(size=(n_per_class, 4)) for i in range(k)]
    )
    y = np.repeat([f"c{i}" for i in range(k)], n_per_class)
    return X, y


SENTINEL = 777.25


class SentinelClassifier(LogisticRegression):
    """Raises when the sentinel-marked sample is held out of training.

    Module-level so the instance pickles for the process executor; with
    the sentinel placed in fold 3's test split, exactly that fold fails.
    """

    def fit(self, X, y):
        if not np.any(np.asarray(X) == SENTINEL):
            raise RuntimeError("sentinel sample held out")
        return super().fit(X, y)


@pytest.fixture(autouse=True)
def _fresh_observability():
    reset_observability()
    yield
    reset_observability()


class TestExecutorIdentity:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_scores_identical_logistic(self, executor):
        X, y = blobs()
        serial = cross_val_score(LogisticRegression(), X, y, n_splits=5)
        parallel = cross_val_score(
            LogisticRegression(), X, y, n_splits=5, n_jobs=2, executor=executor
        )
        assert parallel == serial

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_scores_identical_seeded_forest(self, executor):
        """Per-fold clone seeding must not depend on execution order."""
        X, y = blobs()
        clf = RandomForest(n_estimators=5, max_depth=4, seed=3)
        serial = cross_val_score(clf, X, y, n_splits=4)
        parallel = cross_val_score(
            clf, X, y, n_splits=4, n_jobs=3, executor=executor
        )
        assert parallel == serial

    def test_confusion_identical(self):
        X, y = blobs()
        m_serial, l_serial, a_serial = cross_val_confusion(
            LogisticRegression(), X, y, n_splits=5
        )
        m_par, l_par, a_par = cross_val_confusion(
            LogisticRegression(), X, y, n_splits=5, n_jobs=4, executor="thread"
        )
        np.testing.assert_array_equal(m_par, m_serial)
        assert list(l_par) == list(l_serial)
        assert a_par == a_serial

    def test_worker_count_irrelevant(self):
        X, y = blobs()
        results = [
            cross_val_score(
                LogisticRegression(), X, y, n_splits=5, n_jobs=n, executor="thread"
            )
            for n in (1, 2, 5)
        ]
        assert results[0] == results[1] == results[2]


class TestWorkerSpans:
    def test_fold_spans_reparent_under_caller(self):
        X, y = blobs()
        with trace("experiment") as root:
            cross_val_score(
                LogisticRegression(), X, y, n_splits=5, n_jobs=2, executor="thread"
            )
        folds = [s for s in root.walk() if s.name == "fold"]
        assert sorted(s.labels["fold"] for s in folds) == [0, 1, 2, 3, 4]
        for span in folds:
            assert span.parent_id == root.span_id
            assert [c.name for c in span.children] == ["train", "evaluate"]

    def test_serial_and_parallel_trace_shapes_match(self):
        X, y = blobs()
        shapes = []
        for kwargs in ({}, {"n_jobs": 2, "executor": "thread"}):
            reset_observability()
            with trace("experiment") as root:
                cross_val_score(
                    LogisticRegression(), X, y, n_splits=4, **kwargs
                )
            shapes.append(sorted((s.name, s.status) for s in root.walk()))
        assert shapes[0] == shapes[1]

    def test_exception_in_fold_keeps_trace_balanced(self):
        """Fold 3 raising must not lose the other folds' spans."""
        X, y = blobs()
        folds = list(StratifiedKFold(5, seed=0).split(y))
        sentinel_row = folds[3][1][0]  # lands in fold 3's test split
        X = X.copy()
        X[sentinel_row, 0] = SENTINEL

        with pytest.raises(RuntimeError, match="sentinel sample held out"):
            with trace("experiment") as root:
                cross_val_score(
                    SentinelClassifier(), X, y, n_splits=5,
                    n_jobs=2, executor="thread",
                )
        fold_spans = {
            s.labels["fold"]: s for s in root.walk() if s.name == "fold"
        }
        assert sorted(fold_spans) == [0, 1, 2, 3, 4]  # all shipped back
        assert fold_spans[3].status == "error"
        assert "sentinel" in fold_spans[3].error
        for fold, span in fold_spans.items():
            if fold != 3:
                assert span.status == "ok"
        # every span closed: durations recorded, nothing left open
        for span in root.walk():
            assert span._t0 is None
        assert tracer().current() is None


class TestPoolReuse:
    def test_one_pool_many_crossvals(self):
        X, y = blobs()
        serial = cross_val_score(LogisticRegression(), X, y, n_splits=5)
        with ExecutorPool(n_jobs=2, executor="thread") as pool:
            first = cross_val_score(LogisticRegression(), X, y, n_splits=5, pool=pool)
            second = cross_val_score(LogisticRegression(), X, y, n_splits=5, pool=pool)
            assert pool.map_calls == 2
            assert pool.tasks_run == 10
        assert first == serial
        assert second == serial

    def test_borrowed_pool_left_open(self):
        X, y = blobs()
        pool = ExecutorPool(n_jobs=2, executor="thread")
        try:
            cross_val_score(LogisticRegression(), X, y, n_splits=4, pool=pool)
            assert pool.started  # crossval did not tear the borrowed pool down
        finally:
            pool.close()
        assert not pool.started
