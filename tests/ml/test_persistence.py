"""Tests for repro.ml.persistence (pickle-free classifier serialisation)."""

import json

import numpy as np
import pytest

from repro.ml.forest import RandomForest
from repro.ml.lmt import LogisticModelTree
from repro.ml.logistic import LogisticRegression
from repro.ml.persistence import (
    classifier_from_dict,
    classifier_to_dict,
    load_classifier,
    save_classifier,
)
from repro.ml.subspace import RandomSubspace
from repro.ml.tree import DecisionTree


def blobs(n_per_class=40, k=3, d=5, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, size=(k, d))
    X = np.vstack(
        [centers[i] + 0.6 * rng.normal(size=(n_per_class, d)) for i in range(k)]
    )
    y = np.repeat([f"c{i}" for i in range(k)], n_per_class)
    return X, y


@pytest.fixture()
def data():
    return blobs()


class TestRoundTrips:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: LogisticRegression(),
            lambda: DecisionTree(max_depth=5),
            lambda: RandomForest(n_estimators=6, seed=0),
            lambda: RandomSubspace(n_estimators=4, seed=0),
        ],
        ids=["logistic", "tree", "forest", "subspace"],
    )
    def test_predictions_preserved(self, data, factory, tmp_path):
        X, y = data
        model = factory().fit(X, y)
        path = tmp_path / "model.json"
        save_classifier(model, path)
        restored = load_classifier(path)
        assert np.array_equal(model.predict(X), restored.predict(X))
        assert np.allclose(model.predict_proba(X), restored.predict_proba(X))

    def test_dict_is_json_safe(self, data):
        X, y = data
        payload = classifier_to_dict(LogisticRegression().fit(X, y))
        json.dumps(payload)  # must not raise

    def test_string_labels_survive(self, data, tmp_path):
        X, y = data
        model = DecisionTree().fit(X, y)
        save_classifier(model, tmp_path / "t.json")
        restored = load_classifier(tmp_path / "t.json")
        assert set(restored.predict(X)) <= {"c0", "c1", "c2"}


class TestSafety:
    def test_unsupported_type_rejected(self, data):
        X, y = data
        model = LogisticModelTree().fit(X, y)
        with pytest.raises(TypeError):
            classifier_to_dict(model)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown classifier kind"):
            classifier_from_dict({"kind": "os.system"})

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            classifier_to_dict(LogisticRegression())


class TestErrorPathNaming:
    """Regression guard: a bad artifact names the offending *file* in the
    exception, so a corrupt member inside a serving bundle is
    identifiable from the error alone."""

    def test_invalid_json_names_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match=r"broken\.json.*not valid classifier JSON"):
            load_classifier(path)

    def test_non_object_payload_names_file(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match=r"list\.json.*expected a classifier JSON object"):
            load_classifier(path)

    def test_unknown_kind_names_file(self, tmp_path):
        path = tmp_path / "hostile.json"
        path.write_text(json.dumps({"kind": "os.system"}))
        with pytest.raises(ValueError, match=r"hostile\.json.*unknown classifier kind"):
            load_classifier(path)

    def test_missing_fields_name_file(self, tmp_path, data):
        X, y = data
        payload = classifier_to_dict(LogisticRegression().fit(X, y))
        del payload["coef"]
        path = tmp_path / "truncated.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match=r"truncated\.json"):
            load_classifier(path)

    def test_missing_file_names_path(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="nowhere"):
            load_classifier(tmp_path / "nowhere.json")
