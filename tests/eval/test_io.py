"""Tests for repro.eval.io (ARFF/CSV/npz/JSON interchange)."""

import json

import numpy as np
import pytest

from repro.attack.pipeline import FeatureDataset, SpectrogramDataset
from repro.eval.experiment import run_feature_experiment
from repro.eval.io import (
    load_spectrograms,
    result_to_json,
    save_spectrograms,
    to_arff,
    to_csv,
)


@pytest.fixture()
def dataset():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(6, 24))
    X[1, 3] = np.nan
    y = np.array(["angry", "sad"] * 3)
    return FeatureDataset(X=X, y=y)


class TestARFF:
    def test_structure(self, dataset):
        text = to_arff(dataset)
        assert text.startswith("@RELATION emoleak")
        assert text.count("@ATTRIBUTE") == 25  # 24 features + class
        assert "@ATTRIBUTE emotion {angry,sad}" in text
        assert "@DATA" in text

    def test_row_count(self, dataset):
        data_lines = to_arff(dataset).split("@DATA\n")[1].strip().splitlines()
        assert len(data_lines) == 6

    def test_nan_becomes_missing(self, dataset):
        text = to_arff(dataset)
        assert "?" in text

    def test_empty_rejected(self):
        empty = FeatureDataset(X=np.empty((0, 24)), y=np.array([]))
        with pytest.raises(ValueError):
            to_arff(empty)


class TestCSV:
    def test_header_and_rows(self, dataset):
        lines = to_csv(dataset).strip().splitlines()
        assert lines[0].startswith("min,max,mean")
        assert lines[0].endswith(",emotion")
        assert len(lines) == 7

    def test_nan_becomes_blank(self, dataset):
        lines = to_csv(dataset).strip().splitlines()
        assert ",," in lines[2]  # the NaN cell


class TestSpectrogramBundle:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(1)
        original = SpectrogramDataset(
            images=rng.uniform(size=(5, 32, 32, 1)),
            y=np.array(["angry", "sad", "fear", "happy", "neutral"]),
            fs=420.0,
            n_played=6,
        )
        path = tmp_path / "specs.npz"
        save_spectrograms(original, path)
        loaded = load_spectrograms(path)
        assert np.allclose(loaded.images, original.images)
        assert list(loaded.y) == list(original.y)
        assert loaded.fs == 420.0
        assert loaded.n_played == 6

    def test_empty_rejected(self, tmp_path):
        empty = SpectrogramDataset(images=np.empty((0, 32, 32, 1)), y=np.array([]))
        with pytest.raises(ValueError):
            save_spectrograms(empty, tmp_path / "x.npz")


class TestResultJSON:
    def test_serialises_real_result(self, tess_features):
        result = run_feature_experiment(tess_features, "logistic", seed=0)
        payload = json.loads(result_to_json(result))
        assert payload["classifier"] == "logistic"
        assert 0.0 <= payload["accuracy"] <= 1.0
        assert len(payload["confusion"]) == payload["n_classes"]
        assert payload["random_guess"] == pytest.approx(1 / 7, abs=1e-6)

    def test_history_included_when_present(self, tess_features):
        result = run_feature_experiment(tess_features, "cnn", seed=0, fast=True)
        payload = json.loads(result_to_json(result))
        assert "history" in payload
        assert len(payload["history"]["loss"]) > 0
