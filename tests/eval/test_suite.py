"""Tests for repro.eval.suite (whole-table regeneration)."""

import pytest

from repro.eval.suite import TABLE_DEFINITIONS, run_table
from repro.obs import reset_observability, tracer
from repro.parallel import ExecutorPool


class TestTableDefinitions:
    def test_all_paper_tables_defined(self):
        # The paper's four tables plus the sibling-attack comparison and
        # the Section VI-B defense sweep.
        assert set(TABLE_DEFINITIONS) == {
            "III", "IV", "V", "VI", "ATTACKS", "DEFENSES",
        }

    def test_row_sets_match_paper(self):
        _, rows_iii = TABLE_DEFINITIONS["III"]
        assert "cnn_spectrogram" in rows_iii
        _, rows_vi = TABLE_DEFINITIONS["VI"]
        # Table VI has no spectrogram method (features only, per the paper).
        assert "cnn_spectrogram" not in rows_vi
        assert "random_forest" in rows_vi

    def test_table_v_has_five_devices(self):
        scenarios, _ = TABLE_DEFINITIONS["V"]
        assert len(scenarios) == 5


class TestRunTable:
    def test_unknown_table(self):
        with pytest.raises(ValueError, match="unknown table"):
            run_table("IX")

    def test_unknown_classifier(self):
        with pytest.raises(ValueError, match="not part of"):
            run_table("III", classifiers=("svm",))

    def test_small_table_iv(self):
        suite = run_table(
            "IV", subsample=6, seed=0, fast=True, classifiers=("logistic",)
        )
        assert len(suite.cells) == 1
        result = suite.cells[("cremad-loud-galaxys10", "logistic")]
        assert result.n_classes == 6
        assert 0.0 <= result.accuracy <= 1.0

    def test_render_contains_paper_values(self):
        suite = run_table(
            "IV", subsample=6, seed=0, fast=True, classifiers=("logistic",)
        )
        text = suite.render()
        assert "Table IV (reproduced)" in text
        assert "galaxys10 (ours)" in text
        assert "58.99%" in text  # the published cell

    def test_subset_of_table_iii(self):
        suite = run_table(
            "III", subsample=4, seed=0, fast=True, classifiers=("logistic",)
        )
        assert ("savee-loud-oneplus7t", "logistic") in suite.cells
        assert ("savee-loud-pixel5", "logistic") in suite.cells


class TestParallelRunTable:
    def test_parallel_cells_identical_to_serial(self):
        """The cell fan-out must not change a single accuracy."""
        kwargs = dict(
            subsample=6, seed=0, fast=True,
            classifiers=("logistic", "multiclass"),
        )
        serial = run_table("IV", **kwargs)
        parallel = run_table("IV", n_jobs=2, executor="thread", **kwargs)
        assert set(parallel.cells) == set(serial.cells)
        for key in serial.cells:
            assert parallel.cells[key].accuracy == serial.cells[key].accuracy

    def test_shared_pool_reused_across_cells(self):
        """All of a table's cells go through one borrowed pool."""
        with ExecutorPool(n_jobs=2, executor="thread") as pool:
            suite = run_table(
                "III", subsample=4, seed=0, fast=True,
                classifiers=("logistic", "multiclass"), pool=pool,
            )
            assert pool.map_calls == 1  # one fan-out for the whole table
            assert pool.tasks_run == len(suite.cells) == 4
            assert pool.started  # borrowed pool survives run_table

    def test_cell_spans_nest_under_table_span(self):
        reset_observability()
        try:
            run_table(
                "IV", subsample=6, seed=0, fast=True,
                classifiers=("logistic", "multiclass"),
                n_jobs=2, executor="thread",
            )
            tables = tracer().find("table")
            assert len(tables) == 1
            cells = [s for s in tables[0].walk() if s.name == "cell"]
            assert len(cells) == 2
            for cell in cells:
                assert cell.parent_id == tables[0].span_id
                assert cell.status == "ok"
        finally:
            reset_observability()
