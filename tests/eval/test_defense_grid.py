"""Tests for the defense×attack grid runner and the gate scorer.

Covers the grid's failure semantics (a raising cell ships as a degraded
value, never kills the sweep, and leaves the trace balanced), the
static/adaptive attacker modes, the DEFENSES table wiring, and the
GateScorer's interpolation / refusal contract on a synthetic report.
"""

import numpy as np
import pytest

from repro.attack.privacy_gate import (
    LOWPASS_OFF,
    RATE_CAP_OFF,
    DefenseAxes,
    DefenseConfig,
    GateDegradedError,
    GateError,
    GateRangeError,
    GateScorer,
    LeakageCell,
    LeakageReport,
    leakage_score,
)
from repro.eval.defense_grid import run_defense_grid
from repro.obs import reset_observability, tracer

SMALL_AXES = DefenseAxes(
    rate_caps_hz=(RATE_CAP_OFF, 50.0),
    lowpass_hz=(LOWPASS_OFF,),
    noise_rms=(0.0,),
    quant_lsb=(0.0,),
)


@pytest.fixture(scope="module")
def small_report():
    return run_defense_grid(
        axes=SMALL_AXES,
        modes=("static", "adaptive"),
        classifiers=("logistic",),
        subsample=6,
        seed=0,
    )


class TestGridRun:
    def test_every_cell_materialises(self, small_report):
        # 2 configs x 1 task x 2 modes x 1 classifier.
        assert len(small_report.cells) == 4
        assert not small_report.degraded_cells()
        assert small_report.meta["n_degraded"] == 0
        for cell in small_report.cells:
            assert cell.status in ("ok", "denied")
            assert 0.0 <= cell.accuracy <= 1.0
            assert cell.chance > 0.0

    def test_undefended_leaks_in_both_modes(self, small_report):
        undefended = DefenseConfig()
        for mode in ("static", "adaptive"):
            summary = small_report.summary(undefended, "emotion", mode)
            assert summary["margin"] > 0.0

    def test_payload_roundtrip(self, small_report):
        payload = small_report.to_payload()
        loaded = LeakageReport.from_payload(payload)
        assert loaded.tasks == small_report.tasks
        assert loaded.axes.rate_caps_hz == small_report.axes.rate_caps_hz
        assert len(loaded.cells) == len(small_report.cells)
        for a, b in zip(loaded.cells, small_report.cells):
            assert a.config.key == b.config.key
            assert a.accuracy == b.accuracy
            assert a.status == b.status

    def test_bad_schema_rejected(self, small_report):
        payload = small_report.to_payload()
        payload["schema"] = "emoleak/other/v1"
        with pytest.raises(ValueError, match="schema"):
            LeakageReport.from_payload(payload)


class TestFaultInjection:
    def test_failing_collection_degrades_only_its_cells(self, monkeypatch):
        import repro.eval.defense_grid as grid_mod

        real = grid_mod._collect_defended

        def flaky(scenario, task, config, *args, **kwargs):
            if config is not None and config.rate_cap_hz == 50.0:
                raise RuntimeError("sensor bus reset mid-pass")
            return real(scenario, task, config, *args, **kwargs)

        monkeypatch.setattr(grid_mod, "_collect_defended", flaky)
        reset_observability()
        try:
            report = run_defense_grid(
                axes=SMALL_AXES,
                modes=("adaptive",),
                classifiers=("logistic",),
                subsample=6,
                seed=0,
            )
            # The sweep completed; only the poisoned config degraded.
            degraded = report.degraded_cells()
            assert degraded and all(
                c.config.rate_cap_hz == 50.0 for c in degraded
            )
            for cell in degraded:
                assert "sensor bus reset" in cell.error
            healthy = report.summary(DefenseConfig(), "emotion", "adaptive")
            assert healthy is not None and healthy["status"] == "ok"
            # Degraded configs never enter the safe frontier.
            assert all(
                c.rate_cap_hz != 50.0 for c in report.safe_frontier()
            )
            # The trace stayed balanced: one closed grid span.
            grids = tracer().find("defense_grid")
            assert len(grids) == 1 and grids[0].status == "ok"
        finally:
            reset_observability()

    def test_failing_training_cell_degrades_not_raises(self, monkeypatch):
        import repro.eval.defense_grid as grid_mod

        real = grid_mod._score_cell

        def flaky(mode, *args, **kwargs):
            if mode == "static":
                raise RuntimeError("solver diverged")
            return real(mode, *args, **kwargs)

        monkeypatch.setattr(grid_mod, "_score_cell", flaky)
        report = run_defense_grid(
            axes=SMALL_AXES,
            modes=("static", "adaptive"),
            classifiers=("logistic",),
            subsample=6,
            seed=0,
        )
        degraded = report.degraded_cells()
        assert degraded and all(c.mode == "static" for c in degraded)
        assert all(c.status == "ok" for c in report.cells if c.mode == "adaptive")


class TestDefensesTableWiring:
    def test_run_table_defenses(self):
        from repro.eval.suite import run_table

        suite = run_table(
            "DEFENSES", subsample=10, seed=0, fast=True,
            classifiers=("logistic",),
        )
        assert set(name for name, _ in suite.cells) == {
            "undefended", "cap200", "cap50", "cap50+lpf20",
        }
        rendered = suite.render()
        assert "Defense sweep" in rendered
        assert "cap50+lpf20 (adaptive)" in rendered


def _synthetic_report() -> LeakageReport:
    axes = DefenseAxes(
        rate_caps_hz=(50.0, 200.0),
        lowpass_hz=(20.0, LOWPASS_OFF),
        noise_rms=(0.0,),
        quant_lsb=(0.0,),
    )
    report = LeakageReport(
        axes=axes,
        scenarios={"emotion": "synthetic"},
        tasks=("emotion",),
        modes=("adaptive",),
        classifiers=("logistic",),
        seed=0,
        noise_seed=0,
        subsample=4,
    )
    accuracy = {
        (50.0, 20.0): 0.1,
        (50.0, LOWPASS_OFF): 0.3,
        (200.0, 20.0): 0.5,
        (200.0, LOWPASS_OFF): 0.9,
    }
    for (cap, lpf), acc in accuracy.items():
        report.cells.append(
            LeakageCell(
                config=DefenseConfig(rate_cap_hz=cap, lowpass_hz=lpf),
                task="emotion",
                mode="adaptive",
                classifier="logistic",
                accuracy=acc,
                chance=0.1,
                n_classes=10,
                n_test=20,
                extraction_rate=1.0,
            )
        )
    return report


class TestGateScorer:
    def test_exact_cell(self):
        scorer = GateScorer(_synthetic_report())
        out = scorer.score(200.0, LOWPASS_OFF, 0.0, 0.0)
        assert out["exact"] and out["n_corners"] == 1
        assert out["accuracy"] == pytest.approx(0.9)
        assert out["margin"] == pytest.approx(0.8)
        assert out["leakage"] == pytest.approx(leakage_score(0.9, 0.1))

    def test_midpoint_interpolates_both_axes(self):
        scorer = GateScorer(_synthetic_report())
        out = scorer.score(125.0, 510.0, 0.0, 0.0)
        assert not out["exact"] and out["n_corners"] == 4
        assert out["accuracy"] == pytest.approx(
            np.mean([0.1, 0.3, 0.5, 0.9])
        )

    def test_weighted_interpolation_on_one_axis(self):
        scorer = GateScorer(_synthetic_report())
        # 80% of the way from cap50 to cap200 at lpf 20.
        out = scorer.score(170.0, 20.0, 0.0, 0.0)
        assert out["accuracy"] == pytest.approx(0.2 * 0.1 + 0.8 * 0.5)

    def test_extrapolation_refused(self):
        scorer = GateScorer(_synthetic_report())
        with pytest.raises(GateRangeError, match="rate_cap_hz"):
            scorer.score(25.0, 20.0, 0.0, 0.0)
        with pytest.raises(GateRangeError, match="noise_rms"):
            scorer.score(100.0, 20.0, 0.5, 0.0)

    def test_unknown_task_or_mode_rejected(self):
        scorer = GateScorer(_synthetic_report())
        with pytest.raises(GateError, match="task"):
            scorer.score(200.0, 20.0, 0.0, 0.0, task="speaker-id")
        with pytest.raises(GateError, match="mode"):
            scorer.score(200.0, 20.0, 0.0, 0.0, mode="static")

    def test_degraded_corner_raises(self):
        report = _synthetic_report()
        for cell in report.cells:
            if cell.config.rate_cap_hz == 50.0 and cell.config.lowpass_hz == 20.0:
                cell.status = "degraded"
                cell.error = "boom"
        scorer = GateScorer(report)
        with pytest.raises(GateDegradedError):
            scorer.score(50.0, 20.0, 0.0, 0.0)
        # Queries not touching the degraded corner still answer.
        assert scorer.score(200.0, LOWPASS_OFF, 0.0, 0.0)["exact"]
