"""Tests for the repro.cli command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["--scenario", "tess-loud-oneplus7t"])
        assert args.classifier == "logistic"
        assert args.seed == 0
        assert not args.fast

    def test_classifier_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--scenario", "x", "--classifier", "svm"]
            )


class TestMain:
    def test_list_scenarios(self, capsys):
        assert main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "tess-loud-oneplus7t" in out
        assert "Table V" in out

    def test_missing_scenario_errors(self, capsys):
        assert main([]) == 2
        assert "scenario" in capsys.readouterr().err

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            main(["--scenario", "nope"])

    def test_runs_small_cell(self, capsys):
        code = main([
            "--scenario", "tess-loud-oneplus7t",
            "--classifier", "logistic",
            "--subsample", "8",
            "--fast",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "measured=" in out
        assert "paper=" in out
        assert "angry" in out  # confusion matrix labels

    @pytest.mark.slow
    def test_table_mode(self, capsys):
        code = main(["--table", "IV", "--subsample", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table IV (reproduced)" in out
        assert "(paper)" in out

    def test_sample_rate_cap(self, capsys):
        code = main([
            "--scenario", "tess-loud-oneplus7t",
            "--classifier", "random_forest",
            "--subsample", "8",
            "--sample-rate", "200",
            "--fast",
        ])
        assert code == 0
        assert "200 Hz" in capsys.readouterr().out
