"""Tests for the repro.cli command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["--scenario", "tess-loud-oneplus7t"])
        assert args.classifier == "logistic"
        assert args.seed == 0
        assert not args.fast

    def test_classifier_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--scenario", "x", "--classifier", "svm"]
            )


class TestMain:
    def test_list_scenarios(self, capsys):
        assert main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "tess-loud-oneplus7t" in out
        assert "Table V" in out

    def test_missing_scenario_errors(self, capsys):
        assert main([]) == 2
        assert "scenario" in capsys.readouterr().err

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            main(["--scenario", "nope"])

    def test_runs_small_cell(self, capsys):
        code = main([
            "--scenario", "tess-loud-oneplus7t",
            "--classifier", "logistic",
            "--subsample", "8",
            "--fast",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "measured=" in out
        assert "paper=" in out
        assert "angry" in out  # confusion matrix labels

    @pytest.mark.slow
    def test_table_mode(self, capsys):
        code = main(["--table", "IV", "--subsample", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table IV (reproduced)" in out
        assert "(paper)" in out

    def test_sample_rate_cap(self, capsys):
        code = main([
            "--scenario", "tess-loud-oneplus7t",
            "--classifier", "random_forest",
            "--subsample", "8",
            "--sample-rate", "200",
            "--fast",
        ])
        assert code == 0
        assert "200 Hz" in capsys.readouterr().out


class TestGateCli:
    @pytest.fixture()
    def gate_bundle(self, tmp_path):
        from repro.attack.privacy_gate import (
            LOWPASS_OFF,
            DefenseAxes,
            DefenseConfig,
            LeakageCell,
            LeakageReport,
        )
        from repro.serve.bundle import save_gate_bundle

        axes = DefenseAxes(
            rate_caps_hz=(50.0, 200.0), lowpass_hz=(LOWPASS_OFF,),
            noise_rms=(0.0,), quant_lsb=(0.0,),
        )
        report = LeakageReport(
            axes=axes, scenarios={"emotion": "synthetic"},
            tasks=("emotion",), modes=("adaptive",),
            classifiers=("logistic",), seed=0, noise_seed=0, subsample=4,
        )
        for cap, acc in ((50.0, 0.2), (200.0, 0.8)):
            report.cells.append(
                LeakageCell(
                    config=DefenseConfig(rate_cap_hz=cap), task="emotion",
                    mode="adaptive", classifier="logistic",
                    accuracy=acc, chance=0.2, n_classes=5, n_test=10,
                    extraction_rate=1.0,
                )
            )
        path = tmp_path / "gate.zip"
        save_gate_bundle(report, path)
        return path

    def test_gate_score_dispatches_through_main(self, gate_bundle, capsys):
        code = main([
            "gate", "score", "--bundle", str(gate_bundle),
            "--rate-cap", "125", "--lowpass", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "leakage" in out
        assert "interpolated over 2 corners" in out

    def test_gate_score_refuses_out_of_range(self, gate_bundle, capsys):
        code = main([
            "gate", "score", "--bundle", str(gate_bundle),
            "--rate-cap", "10", "--lowpass", "1000",
        ])
        assert code == 2
        assert "REFUSED" in capsys.readouterr().out

    @pytest.mark.slow
    def test_defenses_table_mode(self, capsys):
        code = main(["--table", "DEFENSES", "--subsample", "10",
                     "--classifier", "logistic"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Defense sweep" in out
