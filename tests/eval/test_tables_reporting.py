"""Tests for repro.eval.tables and repro.eval.reporting."""

import numpy as np
import pytest

from repro.eval.reporting import (
    AUDIO_DOMAIN_REFERENCES,
    PAPER_RESULTS,
    paper_comparison,
    random_guess_rate,
)
from repro.eval.tables import format_confusion, format_table


class TestFormatTable:
    def test_contains_cells(self):
        text = format_table(
            "Table V", [["logistic", 0.945], ["cnn", 0.953]], ["Classifier", "Acc"]
        )
        assert "Table V" in text
        assert "logistic" in text
        assert "94.50%" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_table("t", [], ["a"])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            format_table("t", [["a", "b"]], ["only"])


class TestFormatConfusion:
    def test_renders(self):
        M = np.array([[5, 1], [0, 6]])
        text = format_confusion(M, ["angry", "sad"])
        assert "angry" in text and "sad" in text
        assert "5" in text and "6" in text

    def test_label_mismatch(self):
        with pytest.raises(ValueError):
            format_confusion(np.eye(2), ["only-one"])

    def test_non_square(self):
        with pytest.raises(ValueError):
            format_confusion(np.ones((2, 3)), ["a", "b"])


class TestReporting:
    def test_random_guess_rates_match_paper(self):
        assert random_guess_rate("savee") == pytest.approx(0.1428, abs=1e-3)
        assert random_guess_rate("tess") == pytest.approx(0.1428, abs=1e-3)
        assert random_guess_rate("cremad") == pytest.approx(0.1667, abs=1e-3)

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            random_guess_rate("ravdess")

    def test_headline_numbers_present(self):
        assert PAPER_RESULTS[("V", "tess", "oneplus7t", "cnn")] == pytest.approx(0.953)
        assert PAPER_RESULTS[("VI", "savee", "oneplus9", "cnn")] == pytest.approx(
            0.6052
        )

    def test_audio_references(self):
        assert AUDIO_DOMAIN_REFERENCES["tess"] > 0.99

    def test_comparison_line(self):
        line = paper_comparison("V", "tess", "oneplus7t", "cnn", 0.91)
        assert "measured=91.00%" in line
        assert "paper=95.30%" in line
        assert "chance=14.29%" in line

    def test_comparison_without_paper_value(self):
        line = paper_comparison("V", "tess", "oneplus7t", "nonexistent", 0.5)
        assert "paper=" not in line
