"""Tests for repro.eval.experiment."""

import numpy as np
import pytest

from repro.eval.experiment import (
    CLASSIFIER_NAMES,
    ExperimentResult,
    FeatureCNNClassifier,
    SpectrogramCNNClassifier,
    make_classifier,
    run_feature_experiment,
    run_spectrogram_experiment,
)
from repro.ml.forest import RandomForest
from repro.ml.lmt import LogisticModelTree
from repro.ml.logistic import LogisticRegression
from repro.ml.multiclass import OneVsRestClassifier
from repro.ml.subspace import RandomSubspace


class TestMakeClassifier:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("logistic", LogisticRegression),
            ("multiclass", OneVsRestClassifier),
            ("lmt", LogisticModelTree),
            ("random_forest", RandomForest),
            ("random_subspace", RandomSubspace),
            ("cnn", FeatureCNNClassifier),
            ("cnn_spectrogram", SpectrogramCNNClassifier),
        ],
    )
    def test_names(self, name, cls):
        assert isinstance(make_classifier(name), cls)

    def test_weka_style_aliases(self):
        assert isinstance(make_classifier("trees.LMT"), LogisticModelTree)
        assert isinstance(make_classifier("RandomForest"), RandomForest)

    def test_fast_mode_shrinks(self):
        fast = make_classifier("cnn", fast=True)
        full = make_classifier("cnn", fast=False)
        assert fast.width_scale < full.width_scale

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_classifier("svm")

    def test_all_names_constructible(self):
        for name in CLASSIFIER_NAMES:
            assert make_classifier(name) is not None


class TestExperimentResult:
    def _result(self, accuracy=0.5, n_classes=7):
        return ExperimentResult(
            classifier="logistic",
            accuracy=accuracy,
            n_train=80,
            n_test=20,
            n_classes=n_classes,
            confusion=np.zeros((n_classes, n_classes), dtype=int),
            labels=np.arange(n_classes),
        )

    def test_random_guess(self):
        assert self._result(n_classes=7).random_guess == pytest.approx(1 / 7)
        assert self._result(n_classes=6).random_guess == pytest.approx(1 / 6)

    def test_gain_over_chance(self):
        result = self._result(accuracy=0.5714, n_classes=7)
        assert result.gain_over_chance == pytest.approx(4.0, abs=0.01)

    def test_summary_text(self):
        text = self._result().summary()
        assert "logistic" in text
        assert "accuracy" in text


class TestRunFeatureExperiment(object):
    def test_logistic_cell(self, tess_features):
        result = run_feature_experiment(tess_features, "logistic", seed=0)
        assert result.n_classes == 7
        assert result.accuracy > 3 * result.random_guess
        assert result.confusion.sum() == result.n_test

    def test_cnn_cell_has_history(self, tess_features):
        result = run_feature_experiment(tess_features, "cnn", seed=0, fast=True)
        assert result.history is not None
        assert len(result.history.loss) > 0
        assert result.accuracy > 2 * result.random_guess

    def test_too_few_samples(self):
        from repro.attack.pipeline import FeatureDataset

        tiny = FeatureDataset(X=np.ones((4, 24)), y=np.array(list("aabb")))
        with pytest.raises(ValueError):
            run_feature_experiment(tiny, "logistic")


class TestRunSpectrogramExperiment:
    @pytest.mark.slow
    def test_cell(self, tess_spectrograms):
        result = run_spectrogram_experiment(tess_spectrograms, seed=0, fast=True)
        assert result.classifier == "cnn_spectrogram"
        assert result.accuracy > 1.5 * result.random_guess
        assert result.history is not None
