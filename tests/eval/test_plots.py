"""Tests for repro.eval.plots (ASCII rendering)."""

import numpy as np
import pytest

from repro.eval.plots import heatmap, line_plot, multi_line_plot


class TestLinePlot:
    def test_structure(self):
        text = line_plot(np.sin(np.linspace(0, 6, 100)), title="sine")
        lines = text.splitlines()
        assert lines[0] == "sine"
        assert len(lines) == 1 + 12 + 1  # title + height + axis
        assert "*" in text

    def test_extreme_labels(self):
        text = line_plot([0.0, 5.0, 10.0])
        assert "10.000" in text
        assert "0.000" in text

    def test_constant_series(self):
        text = line_plot([3.0] * 50)
        assert "*" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot([])

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            line_plot([1.0, 2.0], width=4)

    def test_monotone_series_slopes(self):
        text = line_plot(np.arange(100.0), width=20, height=6)
        rows = [line for line in text.splitlines() if "|" in line]
        first_star_row = next(i for i, row in enumerate(rows) if "*" in row)
        last_star_col_row = next(
            i for i, row in enumerate(rows) if row.rstrip().endswith("*")
        )
        # Highest values (top rows) appear at the right of the plot.
        assert first_star_row <= last_star_col_row


class TestMultiLinePlot:
    def test_legend_and_markers(self):
        text = multi_line_plot(
            {"train": [1, 2, 3], "validation": [1, 1.5, 2]}, title="curves"
        )
        assert "a=train" in text
        assert "b=validation" in text
        assert "a" in text and "b" in text

    def test_single_series_uses_star(self):
        text = multi_line_plot({"only": [1, 2, 3]})
        assert "*" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            multi_line_plot({})
        with pytest.raises(ValueError):
            multi_line_plot({"x": []})


class TestHeatmap:
    def test_shape_downsamples_only(self):
        """The map caps at max dims but never upsamples a small image."""
        text = heatmap(np.random.default_rng(0).uniform(size=(64, 64)),
                       max_width=40, max_height=16)
        lines = text.splitlines()
        assert len(lines) == 16
        assert all(len(line) == 40 for line in lines)
        small = heatmap(np.ones((4, 8)), max_width=40, max_height=16)
        assert len(small.splitlines()) == 4
        assert len(small.splitlines()[0]) == 8

    def test_intensity_mapping(self):
        img = np.zeros((4, 8))
        img[:, 4:] = 1.0
        text = heatmap(img, max_width=8, max_height=4)
        lines = text.splitlines()
        # Left half dark (space), right half bright (@).
        assert lines[0][0] == " "
        assert lines[0][-1] == "@"

    def test_title(self):
        text = heatmap(np.ones((4, 4)), title="fig")
        assert text.splitlines()[0] == "fig"

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            heatmap(np.ones(8))
