"""Property-based tests (hypothesis) for composable defense stacks.

Three invariant families:

- algebra: the empty stack is the identity on both the channel and the
  sensor stream, and composition order is *not* forgotten — a rate cap
  followed by a low-pass sees aliased spectra the reverse order never
  produces, so the two stacks must disagree on broadband traces;
- stream invariants: postprocess of any non-decimating stack preserves
  the trace's shape and float64 dtype, never emits NaN/inf on finite
  input, and a decimating stack shrinks the stream by exactly the
  composed stride; and
- statelessness: every defense answers the same trace with the same
  bytes no matter how many times (or in what order) it is called — the
  contract the CollectionCache relies on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.defense import (
    ComposedDefense,
    Defense,
    LowPassObfuscationDefense,
    NoiseInjectionDefense,
    QuantizationDefense,
    RateLimitDefense,
)

_SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
_TONES = st.lists(
    st.floats(min_value=5.0, max_value=180.0), min_size=1, max_size=4
)
_FS = 420.0


def _trace(seed, tones, n=2048):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / _FS
    trace = 9.81 + 0.01 * rng.normal(size=n)
    for k, tone in enumerate(tones):
        trace = trace + 0.1 / (k + 1) * np.sin(2 * np.pi * tone * t)
    return trace


_STAGES = st.sampled_from(
    [
        LowPassObfuscationDefense(cutoff_hz=20.0),
        LowPassObfuscationDefense(cutoff_hz=60.0),
        NoiseInjectionDefense(noise_rms=0.05, seed=3),
        QuantizationDefense(lsb=0.01),
    ]
)
_STACKS = st.lists(_STAGES, min_size=0, max_size=3).map(
    lambda parts: ComposedDefense(tuple(parts))
)


class TestComposedAlgebra:
    @given(_SEEDS, _TONES)
    @settings(max_examples=40, deadline=None)
    def test_empty_stack_is_identity(self, seed, tones):
        empty = ComposedDefense(())
        trace = _trace(seed, tones)
        assert np.array_equal(empty.postprocess(trace, _FS), trace)
        assert empty.stream_stride(_FS) == 1
        assert empty.stream_fs(_FS) == _FS

    def test_empty_stack_identity_on_channel(self):
        from repro.phone.channel import VibrationChannel

        channel = VibrationChannel("oneplus7t")
        defended = ComposedDefense(()).apply(channel)
        assert defended.accel_fs == channel.accel_fs
        assert defended.device.loud_gain == channel.device.loud_gain

    @given(_SEEDS, st.floats(min_value=80.0, max_value=180.0))
    @settings(max_examples=30, deadline=None)
    def test_cap_then_lowpass_differs_from_lowpass_then_cap(self, seed, tone):
        """Decimation before filtering aliases; after filtering it can't.

        A tone above the post-cap Nyquist (25 Hz for a 50 Hz cap) folds
        into the passband when the cap runs first, so the two orders
        must disagree on the surviving stream.
        """
        cap, lpf = RateLimitDefense(50.0), LowPassObfuscationDefense(20.0)
        trace = _trace(seed, [tone])
        cap_first = ComposedDefense((cap, lpf)).postprocess(trace, _FS)
        lpf_first = ComposedDefense((lpf, cap)).postprocess(trace, _FS)
        assert cap_first.shape == lpf_first.shape
        assert not np.allclose(cap_first, lpf_first, atol=1e-4)
        # The aliased order retains strictly more in-band energy.
        assert np.std(cap_first) > np.std(lpf_first)


class TestStreamInvariants:
    @given(_SEEDS, _TONES, _STACKS)
    @settings(max_examples=40, deadline=None)
    def test_non_decimating_stack_preserves_shape_and_dtype(
        self, seed, tones, stack
    ):
        trace = _trace(seed, tones)
        out = stack.postprocess(trace, _FS)
        assert out.shape == trace.shape
        assert out.dtype == np.float64
        assert np.all(np.isfinite(out))

    @given(_SEEDS, _TONES, st.sampled_from([200.0, 100.0, 50.0]))
    @settings(max_examples=30, deadline=None)
    def test_decimating_stack_shrinks_by_the_stride(self, seed, tones, cap_hz):
        cap = RateLimitDefense(cap_hz)
        stack = ComposedDefense((cap, LowPassObfuscationDefense(20.0)))
        trace = _trace(seed, tones)
        out = stack.postprocess(trace, _FS)
        stride = cap.stream_stride(_FS)
        assert stride == int(np.ceil(_FS / cap_hz))
        assert out.shape == trace[::stride].shape
        assert stack.stream_fs(_FS) == _FS / stride

    @given(_SEEDS, _TONES)
    @settings(max_examples=30, deadline=None)
    def test_base_defense_hooks_are_identity(self, seed, tones):
        trace = _trace(seed, tones)
        base = Defense()
        assert np.array_equal(base.postprocess(trace, _FS), trace)
        assert base.stream_stride(_FS) == 1


class TestStatelessness:
    @given(_SEEDS, _TONES, _STACKS)
    @settings(max_examples=40, deadline=None)
    def test_repeated_calls_are_byte_identical(self, seed, tones, stack):
        trace = _trace(seed, tones)
        first = stack.postprocess(trace, _FS)
        # Interleave a call on an unrelated trace to catch hidden state.
        stack.postprocess(_trace(seed + 1, tones), _FS)
        again = stack.postprocess(trace, _FS)
        assert first.tobytes() == again.tobytes()

    @given(_SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_noise_is_content_keyed_not_call_keyed(self, seed):
        d = NoiseInjectionDefense(noise_rms=0.1, seed=0)
        a, b = _trace(seed, [40.0]), _trace(seed + 1, [40.0])
        noise_a = d.postprocess(a, _FS) - a
        noise_b = d.postprocess(b, _FS) - b
        # Different content draws different noise...
        assert not np.array_equal(noise_a, noise_b)
        # ...but the same content always draws the same noise.
        assert np.array_equal(d.postprocess(a, _FS) - a, noise_a)
