"""Property-based tests for the speech and phone substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phone.accelerometer import GRAVITY, Accelerometer
from repro.phone.chassis import ChassisTransfer
from repro.phone.motion import HandheldMotion, MotionProcess
from repro.phone.speaker import SpeakerModel
from repro.speech.glottal import rosenberg_pulse
from repro.speech.prosody import EMOTIONS, emotion_profile, perturbed_profile
from repro.speech.synthesizer import SpeakerVoice, Synthesizer


class TestProsodyProperties:
    @given(
        st.sampled_from(EMOTIONS),
        st.integers(0, 10_000),
        st.floats(0.0, 2.0),
        st.floats(0.0, 0.6),
    )
    @settings(max_examples=60, deadline=None)
    def test_perturbed_profiles_always_valid(self, emotion, seed, expr, var):
        profile = perturbed_profile(
            emotion_profile(emotion),
            np.random.default_rng(seed),
            expressiveness=expr,
            variability=var,
        )
        assert profile.f0_scale > 0
        assert profile.rate_scale > 0
        assert profile.jitter > 0
        assert 0.0 <= profile.breathiness <= 0.8
        assert np.isfinite(profile.energy_db)

    @given(st.integers(2, 200))
    @settings(max_examples=30, deadline=None)
    def test_rosenberg_pulse_normalised(self, length):
        pulse = rosenberg_pulse(length)
        assert pulse.shape == (length,)
        assert np.max(np.abs(pulse)) <= 1.0 + 1e-12


class TestSynthesizerProperties:
    @given(st.sampled_from(EMOTIONS), st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_waveform_contract(self, emotion, seed):
        synth = Synthesizer(fs=8000.0)
        voice = SpeakerVoice.random(np.random.default_rng(seed % 17))
        wave = synth.render(
            voice, emotion_profile(emotion), np.random.default_rng(seed)
        )
        assert wave.ndim == 1
        assert wave.size > 400
        assert np.all(np.abs(wave) <= 1.0)
        assert np.all(np.isfinite(wave))


class TestPhoneProperties:
    @given(
        st.floats(0.01, 2.0),
        st.integers(0, 1_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_speaker_drive_scales_with_gain(self, gain, seed):
        rng = np.random.default_rng(seed)
        x = 0.05 * rng.normal(size=2000)
        weak = SpeakerModel(drive_gain=gain, compression=0.0).drive(x, 8000.0)
        strong = SpeakerModel(drive_gain=2 * gain, compression=0.0).drive(x, 8000.0)
        assert np.allclose(strong, 2 * weak, rtol=1e-9, atol=1e-12)

    @given(st.floats(200.0, 3000.0), st.floats(0.5, 10.0))
    @settings(max_examples=25, deadline=None)
    def test_chassis_stable(self, resonance, q):
        transfer = ChassisTransfer(resonance_hz=resonance, q_factor=q)
        rng = np.random.default_rng(0)
        out = transfer.transfer(rng.normal(size=4000), 8000.0)
        assert np.all(np.isfinite(out))
        assert np.std(out) < 100 * 1.0  # no blow-up

    @given(st.floats(50.0, 500.0), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_accelerometer_rate_contract(self, fs, seed):
        accel = Accelerometer(fs=fs, noise_rms=0.0, lsb=0.0)
        out = accel.sample(np.zeros(16000), 8000.0, np.random.default_rng(seed))
        assert out.size == pytest.approx(2 * fs, abs=2)
        assert np.allclose(out, GRAVITY)

    @given(st.integers(0, 2_000), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_motion_chunking_invariance(self, seed, n_chunks):
        """Any chunking of the motion process gives the same waveform."""
        total = 3000
        whole = MotionProcess(
            HandheldMotion(), np.random.default_rng(seed)
        ).advance(total, 8000.0)
        chunked = MotionProcess(HandheldMotion(), np.random.default_rng(seed))
        sizes = np.full(n_chunks, total // n_chunks)
        sizes[-1] += total - sizes.sum()
        parts = np.concatenate([chunked.advance(int(n), 8000.0) for n in sizes])
        assert np.allclose(whole, parts)
