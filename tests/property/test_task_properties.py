"""Property-based tests (hypothesis) on the multi-task label plane.

Invariants: every record's task label lies in the task's inventory,
gender is a pure function of the voice's base F0 against the split
constant, task-name resolution is idempotent, and the ramp cache is
transparent (values equal linspace for arbitrary parameters).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import TASKS, build_savee, build_songs, build_tess, resolve_task
from repro.datasets.base import GENDER_F0_SPLIT_HZ
from repro.speech import synthesizer as synth_mod
from repro.speech.synthesizer import SpeakerVoice, _cached_ramp

SPEECH_CORPORA = {
    "tess": build_tess(words_per_emotion=2),
    "savee": build_savee(),
}
SONG_CORPUS = build_songs(clips_per_song=3)


class TestLabelPlaneProperties:
    @given(
        st.sampled_from(sorted(SPEECH_CORPORA)),
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([t for t in TASKS if t != "content-id"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_speech_label_in_inventory(self, corpus_name, index, task):
        corpus = SPEECH_CORPORA[corpus_name]
        spec = corpus.specs[index % len(corpus.specs)]
        label = corpus.task_label(spec, task)
        assert label in corpus.task_inventory(task)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_song_content_label_in_inventory(self, index):
        spec = SONG_CORPUS.specs[index % len(SONG_CORPUS.specs)]
        label = SONG_CORPUS.task_label(spec, "content-id")
        assert label in SONG_CORPUS.task_inventory("content-id")
        assert label == spec.speaker_id

    @given(
        st.sampled_from(sorted(SPEECH_CORPORA)),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_gender_is_pure_function_of_voice_f0(self, corpus_name, index):
        corpus = SPEECH_CORPORA[corpus_name]
        speakers = sorted(corpus.speakers)
        sid = speakers[index % len(speakers)]
        voice = corpus.speakers[sid]
        expected = "female" if voice.base_f0_hz > GENDER_F0_SPLIT_HZ else "male"
        assert corpus.speaker_gender(sid) == expected

    @given(
        st.floats(min_value=60.0, max_value=400.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_split_partitions_f0_axis(self, f0):
        import dataclasses

        base = build_tess(words_per_emotion=1)
        corpus = dataclasses.replace(
            base,
            speakers={"probe": SpeakerVoice(base_f0_hz=f0), **base.speakers},
        )
        gender = corpus.speaker_gender("probe")
        assert gender == ("female" if f0 > GENDER_F0_SPLIT_HZ else "male")

    @given(st.sampled_from(TASKS))
    @settings(max_examples=20, deadline=None)
    def test_resolve_task_idempotent_and_case_insensitive(self, task):
        assert resolve_task(task) == task
        assert resolve_task(task.upper()) == task
        assert resolve_task(task.replace("-", "_")) == task
        assert resolve_task(resolve_task(task)) == task


class TestRampCacheProperties:
    @given(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.integers(min_value=1, max_value=512),
        st.one_of(
            st.none(), st.floats(min_value=0.25, max_value=4.0, allow_nan=False)
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_cached_ramp_equals_linspace(self, start, stop, n, power):
        ramp = _cached_ramp(start, stop, n, power)
        expected = np.linspace(start, stop, n)
        if power is not None:
            expected = expected**power
        assert ramp.tobytes() == expected.tobytes()
        assert len(synth_mod._RAMP_CACHE) <= synth_mod._RAMP_CACHE_MAX
