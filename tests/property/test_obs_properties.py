"""Property-based tests (hypothesis) for the observability layer.

The registry's merge must be a commutative monoid — that is what makes
combining per-worker registries safe in any order — and the engine's
:class:`CollectionStats` must be a faithful view of the same algebra.
Values are generated as integer-valued floats so additions are exact
and the algebraic laws can be asserted with ``==``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.engine import CollectionStats
from repro.obs import MetricsRegistry, Tracer

# -- registry generation ----------------------------------------------------

_NAMES = st.sampled_from(["alpha", "beta", "gamma"])
_LABELS = st.sampled_from([{}, {"k": "1"}, {"k": "2"}, {"k": "1", "j": "x"}])
_VALUES = st.integers(min_value=0, max_value=1000).map(float)

_OPS = st.lists(
    st.tuples(st.sampled_from(["count", "observe", "gauge"]), _NAMES, _LABELS, _VALUES),
    max_size=25,
)


def _build(ops) -> MetricsRegistry:
    reg = MetricsRegistry()
    for kind, name, labels, value in ops:
        getattr(reg, kind)(name, value, **labels)
    return reg


registries = _OPS.map(_build)


class TestMergeMonoid:
    @given(registries, registries)
    @settings(max_examples=50, deadline=None)
    def test_commutative(self, a, b):
        assert a.copy().merge(b).snapshot() == b.copy().merge(a).snapshot()

    @given(registries, registries, registries)
    @settings(max_examples=50, deadline=None)
    def test_associative(self, a, b, c):
        left = a.copy().merge(b).merge(c)
        right = a.copy().merge(b.copy().merge(c))
        assert left.snapshot() == right.snapshot()

    @given(registries)
    @settings(max_examples=50, deadline=None)
    def test_identity(self, a):
        before = a.snapshot()
        assert a.copy().merge(MetricsRegistry()).snapshot() == before
        assert MetricsRegistry().merge(a).snapshot() == before

    @given(registries)
    @settings(max_examples=50, deadline=None)
    def test_timer_totals_nonnegative(self, a):
        snap = a.snapshot()
        for stat in snap["timers"].values():
            assert stat.total_s >= 0
            assert stat.count >= 0
            assert stat.max_s >= 0
            assert stat.total_s >= stat.max_s


class TestSpanTimerBounds:
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_parent_span_at_least_max_child(self, depth, width):
        """A span strictly encloses its children, so its duration (and
        therefore its registry timer total) is >= any child's."""
        reg = MetricsRegistry()
        tracer = Tracer(registry=reg)

        def nest(level: int) -> None:
            if level >= depth:
                return
            for _ in range(width):
                with tracer.span(f"level{level + 1}"):
                    nest(level + 1)

        with tracer.span("level0"):
            nest(0)

        for span in tracer.spans():
            assert span.duration_s >= 0
            for child in span.children:
                assert span.duration_s >= child.duration_s
            name = span.name
            assert reg.timer_total(name).total_s >= span.duration_s or np.isclose(
                reg.timer_total(name).total_s, span.duration_s
            )


# -- CollectionStats <-> registry agreement ---------------------------------

_COUNTS = st.integers(min_value=0, max_value=500)
_SECONDS = st.integers(min_value=0, max_value=1000).map(float)

stats_records = st.builds(
    CollectionStats,
    renders=_COUNTS,
    transmits=_COUNTS,
    regions_detected=_COUNTS,
    regions_used=_COUNTS,
    n_played=_COUNTS,
    cache_hits=_COUNTS,
    cache_misses=_COUNTS,
    render_s=_SECONDS,
    transmit_s=_SECONDS,
    detect_s=_SECONDS,
    product_s=_SECONDS,
    total_s=_SECONDS,
    n_jobs=st.integers(min_value=1, max_value=16),
    executor=st.sampled_from(["serial", "thread", "process"]),
)

_NUMERIC_FIELDS = (
    "renders", "transmits", "regions_detected", "regions_used", "n_played",
    "cache_hits", "cache_misses",
    "render_s", "transmit_s", "detect_s", "product_s", "total_s",
)


class TestStatsRegistryAgreement:
    @given(stats_records, stats_records)
    @settings(max_examples=50, deadline=None)
    def test_add_agrees_with_registry_merge(self, a, b):
        expected = CollectionStats(**{f: getattr(a, f) for f in _NUMERIC_FIELDS},
                                   n_jobs=a.n_jobs, executor=a.executor)
        expected.add(b)

        merged = a.to_registry().merge(b.to_registry())
        view = CollectionStats.from_registry(merged)

        for field in _NUMERIC_FIELDS:
            assert getattr(view, field) == getattr(expected, field), field
        assert view.n_jobs == expected.n_jobs
        if a.n_jobs != b.n_jobs:
            assert view.executor == expected.executor

    @given(stats_records)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_through_registry(self, stats):
        view = CollectionStats.from_registry(stats.to_registry())
        for field in _NUMERIC_FIELDS:
            assert getattr(view, field) == getattr(stats, field), field
        assert view.n_jobs == stats.n_jobs
        assert view.executor == stats.executor
