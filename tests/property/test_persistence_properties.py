"""Property-based round-trip tests for model persistence."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.forest import RandomForest
from repro.ml.logistic import LogisticRegression
from repro.ml.persistence import classifier_from_dict, classifier_to_dict
from repro.ml.tree import DecisionTree


def blobs(n_per_class, k, d, spread, seed):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, size=(k, d))
    X = np.vstack(
        [centers[i] + spread * rng.normal(size=(n_per_class, d)) for i in range(k)]
    )
    y = np.repeat([f"c{i}" for i in range(k)], n_per_class)
    return X, y


class TestPersistenceProperties:
    @given(
        st.integers(2, 4),
        st.integers(2, 5),
        st.floats(0.3, 2.0),
        st.integers(0, 1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_logistic_round_trip(self, k, d, spread, seed):
        X, y = blobs(15, k, d, spread, seed)
        model = LogisticRegression(max_iter=50).fit(X, y)
        restored = classifier_from_dict(classifier_to_dict(model))
        assert np.allclose(model.predict_proba(X), restored.predict_proba(X))

    @given(st.integers(2, 4), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_tree_round_trip(self, k, seed):
        X, y = blobs(15, k, 3, 0.8, seed)
        model = DecisionTree(max_depth=4).fit(X, y)
        restored = classifier_from_dict(classifier_to_dict(model))
        assert np.array_equal(model.predict(X), restored.predict(X))

    @given(st.integers(0, 500))
    @settings(max_examples=8, deadline=None)
    def test_forest_round_trip(self, seed):
        X, y = blobs(12, 3, 4, 0.7, seed)
        model = RandomForest(n_estimators=4, seed=seed).fit(X, y)
        restored = classifier_from_dict(classifier_to_dict(model))
        assert np.allclose(model.predict_proba(X), restored.predict_proba(X))
