"""Property-based round-trip tests for model persistence.

Every persistable artifact — each classifier kind, the scaler, CNN
weights, and whole serving bundles — must satisfy ``load(save(x))``
with *bitwise-equal* predictions on random inputs.
"""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.forest import RandomForest
from repro.ml.logistic import LogisticRegression
from repro.ml.persistence import (
    classifier_from_dict,
    classifier_to_dict,
    scaler_from_dict,
    scaler_to_dict,
)
from repro.ml.preprocessing import StandardScaler
from repro.ml.subspace import RandomSubspace
from repro.ml.tree import DecisionTree


def blobs(n_per_class, k, d, spread, seed):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, size=(k, d))
    X = np.vstack(
        [centers[i] + spread * rng.normal(size=(n_per_class, d)) for i in range(k)]
    )
    y = np.repeat([f"c{i}" for i in range(k)], n_per_class)
    return X, y


class TestPersistenceProperties:
    @given(
        st.integers(2, 4),
        st.integers(2, 5),
        st.floats(0.3, 2.0),
        st.integers(0, 1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_logistic_round_trip(self, k, d, spread, seed):
        X, y = blobs(15, k, d, spread, seed)
        model = LogisticRegression(max_iter=50).fit(X, y)
        restored = classifier_from_dict(classifier_to_dict(model))
        assert np.allclose(model.predict_proba(X), restored.predict_proba(X))

    @given(st.integers(2, 4), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_tree_round_trip(self, k, seed):
        X, y = blobs(15, k, 3, 0.8, seed)
        model = DecisionTree(max_depth=4).fit(X, y)
        restored = classifier_from_dict(classifier_to_dict(model))
        assert np.array_equal(model.predict(X), restored.predict(X))

    @given(st.integers(0, 500))
    @settings(max_examples=8, deadline=None)
    def test_forest_round_trip(self, seed):
        X, y = blobs(12, 3, 4, 0.7, seed)
        model = RandomForest(n_estimators=4, seed=seed).fit(X, y)
        restored = classifier_from_dict(classifier_to_dict(model))
        assert np.allclose(model.predict_proba(X), restored.predict_proba(X))

    @given(
        st.integers(2, 4),
        st.floats(0.3, 1.0),
        st.integers(0, 500),
    )
    @settings(max_examples=8, deadline=None)
    def test_subspace_round_trip(self, k, fraction, seed):
        X, y = blobs(12, k, 5, 0.7, seed)
        model = RandomSubspace(
            n_estimators=4, subspace_fraction=fraction, seed=seed
        ).fit(X, y)
        restored = classifier_from_dict(classifier_to_dict(model))
        assert np.array_equal(model.predict_proba(X), restored.predict_proba(X))
        assert np.array_equal(model.predict(X), restored.predict(X))


class TestScalerProperties:
    @given(st.integers(2, 12), st.integers(5, 40), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_scaler_round_trip_bitwise(self, d, n, seed):
        X = np.random.default_rng(seed).normal(0, 5.0, size=(n, d))
        scaler = StandardScaler().fit(X)
        restored = scaler_from_dict(scaler_to_dict(scaler))
        assert np.array_equal(scaler.mean_, restored.mean_)
        assert np.array_equal(scaler.std_, restored.std_)
        probe = np.random.default_rng(seed + 1).normal(size=(7, d))
        assert np.array_equal(scaler.transform(probe), restored.transform(probe))

    @given(
        st.integers(3, 8),
        st.lists(st.integers(0, 7), min_size=1, max_size=3, unique=True),
        st.integers(0, 500),
    )
    @settings(max_examples=20, deadline=None)
    def test_scaler_with_zero_variance_columns(self, d, const_cols, seed):
        """Constant columns survive the round trip and still transform
        identically (the zero-variance guard is part of the artifact)."""
        const_cols = [c for c in const_cols if c < d]
        X = np.random.default_rng(seed).normal(0, 2.0, size=(20, d))
        for c in const_cols:
            X[:, c] = 3.25
        scaler = StandardScaler().fit(X)
        restored = scaler_from_dict(scaler_to_dict(scaler))
        assert np.array_equal(scaler.transform(X), restored.transform(X))
        for c in const_cols:
            assert np.all(np.isfinite(restored.transform(X)[:, c]))


class TestCNNWeightProperties:
    @given(st.integers(0, 200), st.integers(2, 4))
    @settings(max_examples=5, deadline=None)
    def test_cnn_weight_round_trip_bitwise(self, seed, k):
        """save_weights → load_weights reproduces predictions bitwise."""
        from repro.eval.experiment import make_classifier

        X, y = blobs(8, k, 24, 0.5, seed)
        cnn = make_classifier("cnn", seed=seed, fast=True)
        cnn.epochs = 1
        cnn.fit(X, y)
        buffer = io.BytesIO()
        cnn._model.save_weights(buffer)
        fresh = make_classifier("cnn", seed=seed + 1, fast=True)
        fresh.epochs = 1
        fresh.fit(X, y)  # different weights until the checkpoint lands
        buffer.seek(0)
        fresh._model.load_weights(buffer)
        fresh._scaler = cnn._scaler
        assert np.array_equal(cnn.predict_proba(X), fresh.predict_proba(X))


class TestBundleProperties:
    @given(k=st.integers(2, 4), seed=st.integers(0, 500), as_zip=st.booleans())
    @settings(max_examples=5, deadline=None)
    def test_full_bundle_round_trip_bitwise(self, tmp_path_factory, k, seed, as_zip):
        """Whole serving bundles round-trip with bitwise-equal predictions."""
        from repro.serve.bundle import ModelBundle, load_bundle, save_bundle

        X, y = blobs(10, k, 24, 0.5, seed)
        clf = LogisticRegression(max_iter=50).fit(X, y)
        bundle = ModelBundle.create("prop", str(seed), classifier=clf)
        root = tmp_path_factory.mktemp("bundles")
        path = root / (f"b-{seed}.zip" if as_zip else f"b-{seed}")
        save_bundle(bundle, path)
        loaded = load_bundle(path)
        probe = np.random.default_rng(seed + 7).normal(0, 3.0, size=(9, 24))
        assert np.array_equal(bundle.predict_proba(probe), loaded.predict_proba(probe))
        assert np.array_equal(bundle.predict(probe), loaded.predict(probe))
        assert loaded.manifest.labels == sorted(set(y))
