"""Property-based tests (hypothesis) on core invariants.

Covers the numerical substrates the whole pipeline leans on: DSP
transforms, the feature extractor, the ML primitives and the NN layers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.attack.features import FEATURE_NAMES, extract_features
from repro.dsp.envelope import moving_average, moving_rms
from repro.dsp.resample import sample_and_decimate
from repro.dsp.spectrogram import resize_image, spectrogram_image
from repro.dsp.stft import frame_signal, stft
from repro.dsp.windows import get_window
from repro.ml.infogain import entropy, information_gain
from repro.ml.logistic import softmax
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.ml.preprocessing import StandardScaler, train_test_split
from repro.nn.activations import relu
from repro.nn.layers import Dense, MaxPool1D

finite_signal = arrays(
    np.float64,
    st.integers(min_value=16, max_value=300),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestDSPProperties:
    @given(finite_signal, st.integers(2, 50))
    @settings(max_examples=30, deadline=None)
    def test_moving_average_bounded_by_extremes(self, x, window):
        out = moving_average(x, window)
        assert np.all(out <= x.max() + 1e-9)
        assert np.all(out >= x.min() - 1e-9)

    @given(finite_signal, st.integers(2, 50))
    @settings(max_examples=30, deadline=None)
    def test_moving_rms_nonnegative(self, x, window):
        assert np.all(moving_rms(x, window) >= 0)

    @given(finite_signal)
    @settings(max_examples=30, deadline=None)
    def test_framing_covers_all_samples(self, x):
        frames = frame_signal(x, 16, 8, pad=True)
        assert frames.shape[0] * 8 + 8 >= x.size

    @given(st.integers(8, 128))
    @settings(max_examples=20, deadline=None)
    def test_window_bounds(self, length):
        for name in ("hann", "hamming", "blackman"):
            w = get_window(name, length)
            assert np.all(w >= -1e-12)
            assert np.all(w <= 1.0 + 1e-12)

    @given(finite_signal)
    @settings(max_examples=20, deadline=None)
    def test_stft_parseval_like(self, x):
        """STFT energy scales with signal energy (no blow-up, no loss).

        Hamming keeps nonzero window endpoints: under hann a signal
        whose energy sits exactly on the zero-valued frame edges (e.g.
        an impulse at sample 0) transforms to zero energy, which is a
        property of the window, not an analysis bug.
        """
        _, _, Z = stft(x, 100.0, frame_length=16, hop_length=8, window="hamming")
        if np.sum(x**2) > 1e-9:
            ratio = np.sum(np.abs(Z) ** 2) / np.sum(x**2)
            assert 0.01 < ratio < 100.0

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 20), st.integers(2, 20)),
            elements=st.floats(-50, 50, allow_nan=False),
        ),
        st.integers(1, 40),
        st.integers(1, 40),
    )
    @settings(max_examples=30, deadline=None)
    def test_resize_respects_bounds(self, img, rows, cols):
        out = resize_image(img, (rows, cols))
        assert out.shape == (rows, cols)
        assert out.min() >= img.min() - 1e-9
        assert out.max() <= img.max() + 1e-9

    @given(finite_signal)
    @settings(max_examples=30, deadline=None)
    def test_spectrogram_image_normalised(self, x):
        img = spectrogram_image(x, 100.0, size=16)
        assert img.shape == (16, 16)
        assert img.min() >= 0.0 and img.max() <= 1.0 + 1e-12

    @given(finite_signal, st.floats(0.0, 0.99))
    @settings(max_examples=30, deadline=None)
    def test_sample_and_decimate_bounded(self, x, phase):
        out = sample_and_decimate(x, 100.0, 37.0, phase=phase)
        assert out.min() >= x.min() - 1e-9
        assert out.max() <= x.max() + 1e-9


class TestFeatureProperties:
    @given(
        arrays(
            np.float64,
            st.integers(16, 400),
            elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_feature_vector_shape_and_mostly_finite(self, region):
        vec = extract_features(region, 420.0)
        assert vec.shape == (len(FEATURE_NAMES),)
        # Only cv/frequency_ratio may legitimately be NaN (zero mean /
        # zero low band); everything else must be finite.
        allowed_nan = {
            FEATURE_NAMES.index("cv"),
            FEATURE_NAMES.index("frequency_ratio"),
        }
        for i, value in enumerate(vec):
            if i not in allowed_nan:
                assert np.isfinite(value), FEATURE_NAMES[i]

    @given(
        arrays(
            np.float64,
            st.integers(16, 200),
            elements=st.floats(-10, 10, allow_nan=False),
        ),
        st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_scale_equivariance_of_level_features(self, region, scale):
        a = extract_features(region, 420.0)
        b = extract_features(region * scale, 420.0)
        for name in ("min", "max", "mean", "std", "range"):
            i = FEATURE_NAMES.index(name)
            assert b[i] == pytest.approx(a[i] * scale, rel=1e-6, abs=1e-9)

    @given(
        arrays(
            np.float64,
            st.integers(16, 200),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_entropy_feature_bounded(self, region):
        vec = extract_features(region, 420.0)
        assert 0.0 <= vec[FEATURE_NAMES.index("entropy")] <= 1.0


class TestMLProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 20), st.integers(2, 6)),
            elements=st.floats(-20, 20, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_softmax_simplex(self, logits):
        P = softmax(logits)
        assert np.allclose(P.sum(axis=1), 1.0)
        assert np.all(P >= 0)

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_entropy_bounds(self, labels):
        h = entropy(np.array(labels))
        assert 0.0 <= h <= np.log2(3) + 1e-9

    @given(
        st.lists(st.sampled_from(["a", "b"]), min_size=10, max_size=100),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_information_gain_bounded_by_entropy(self, labels, seed):
        y = np.array(labels)
        x = np.random.default_rng(seed).normal(size=y.size)
        assert 0.0 <= information_gain(x, y) <= entropy(y) + 1e-9

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(5, 50), st.integers(1, 6)),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_scaler_round_trip_statistics(self, X):
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-7)

    @given(st.integers(10, 200), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_split_partitions(self, n, seed):
        X = np.arange(2 * n, dtype=float).reshape(n, 2)
        y = np.array(["a", "b"] * (n // 2) + ["a"] * (n % 2))
        X_train, X_test, y_train, y_test = train_test_split(X, y, 0.25, seed)
        assert X_train.shape[0] + X_test.shape[0] == n
        ids = np.concatenate([X_train[:, 0], X_test[:, 0]])
        assert np.unique(ids).size == n

    @given(st.lists(st.sampled_from(list("abc")), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_confusion_total_and_accuracy_consistency(self, labels):
        y_true = np.array(labels)
        y_pred = np.roll(y_true, 1)
        M, _ = confusion_matrix(y_true, y_pred)
        assert M.sum() == y_true.size
        assert np.trace(M) / M.sum() == pytest.approx(
            accuracy_score(y_true, y_pred)
        )


class TestNNProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 8), st.integers(1, 16)),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_relu_idempotent_and_nonnegative(self, x):
        out = relu(x)
        assert np.all(out >= 0)
        assert np.allclose(relu(out), out)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 4), st.integers(2, 12), st.integers(1, 3)),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_maxpool_output_bounded(self, x):
        layer = MaxPool1D(2)
        out = layer.forward(x, training=True)
        assert out.max() <= x.max() + 1e-12
        assert out.min() >= x.min() - 1e-12

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 6), st.integers(2, 10)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_dense_linearity(self, x):
        layer = Dense(4)
        layer.build((x.shape[1],), np.random.default_rng(0))
        a = layer.forward(x, training=False)
        b = layer.forward(2 * x, training=False)
        # Affine: f(2x) - f(x) = (W·x), i.e. b - a = a - bias
        assert np.allclose(b - a, a - layer.b, atol=1e-9)
