"""Property-based tests (hypothesis) for the int8 quantisation path.

Two families of invariants:

- the weight codec: codes stay in the symmetric int8 range, the
  round-trip error is bounded by half a quantisation step per output
  channel, serialising the codes loses nothing, and rescaling a
  channel by a power of two moves the scale without touching a single
  code; and
- delta bundles: for any derived bundle, applying a delta archive on
  top of its parent reconstructs the full archive byte-for-byte.
"""

import io
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.logistic import LogisticRegression
from repro.nn.quant import (
    QMAX,
    dequantize_weights,
    quantize_activations,
    quantize_weights,
)
from repro.serve.bundle import (
    ModelBundle,
    quantize_bundle,
    save_bundle,
    save_delta_bundle,
    verify_bundle,
)

# -- weight codec -----------------------------------------------------------

_SHAPES = st.sampled_from(
    [(4, 3), (7, 1), (2, 5, 6), (3, 3, 2, 4), (1, 8)]
)
_SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
_LOGSCALES = st.integers(min_value=-6, max_value=6)


def _weights(seed, shape, logscale):
    rng = np.random.default_rng(seed)
    w = rng.normal(scale=float(2.0**logscale), size=shape)
    # exercise degenerate channels too: zero out the first one sometimes
    if seed % 3 == 0:
        w[..., 0] = 0.0
    return w


class TestWeightCodec:
    @given(_SEEDS, _SHAPES, _LOGSCALES)
    @settings(max_examples=60, deadline=None)
    def test_codes_in_range_scales_positive(self, seed, shape, logscale):
        q, scales = quantize_weights(_weights(seed, shape, logscale))
        assert q.dtype == np.int8
        assert np.all(np.abs(q.astype(np.int32)) <= QMAX)
        assert scales.dtype == np.float32
        assert np.all(scales > 0)

    @given(_SEEDS, _SHAPES, _LOGSCALES)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_within_half_step(self, seed, shape, logscale):
        w = _weights(seed, shape, logscale)
        q, scales = quantize_weights(w)
        back = dequantize_weights(q, scales)
        step = scales.astype(np.float64)  # one code = one scale unit
        err = np.abs(back - w)
        # half-step bound per output channel (+ float32 scale rounding)
        assert np.all(err <= step * (0.5 + 1e-5) + 1e-12)

    @given(_SEEDS, _SHAPES, _LOGSCALES)
    @settings(max_examples=40, deadline=None)
    def test_serialise_load_dequantise_is_exact(self, seed, shape, logscale):
        """quantise → npz → load → dequantise loses nothing."""
        q, scales = quantize_weights(_weights(seed, shape, logscale))
        buffer = io.BytesIO()
        np.savez(buffer, q=q, scales=scales)
        buffer.seek(0)
        loaded = np.load(buffer)
        np.testing.assert_array_equal(loaded["q"], q)
        np.testing.assert_array_equal(loaded["scales"], scales)
        np.testing.assert_array_equal(
            dequantize_weights(loaded["q"], loaded["scales"]),
            dequantize_weights(q, scales),
        )

    @given(_SEEDS, _SHAPES, st.integers(min_value=-4, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_power_of_two_rescale_preserves_codes(self, seed, shape, k):
        """w → 2^k·w multiplies the scales by 2^k and keeps every code."""
        w = _weights(seed, shape, 0)
        q1, s1 = quantize_weights(w)
        q2, s2 = quantize_weights(w * float(2.0**k))
        np.testing.assert_array_equal(q1, q2)
        nonzero = np.any(w.reshape(-1, w.shape[-1]) != 0.0, axis=0)
        np.testing.assert_allclose(
            s2[nonzero], s1[nonzero] * np.float32(2.0**k), rtol=1e-6
        )

    @given(_SEEDS, st.integers(min_value=2, max_value=9))
    @settings(max_examples=40, deadline=None)
    def test_activation_rows_quantise_independently(self, seed, n):
        x = np.random.default_rng(seed).normal(size=(n, 6))
        xq, scale = quantize_activations(x)
        assert scale.shape == (n,)
        keep = max(1, n // 2)
        xq_sub, scale_sub = quantize_activations(x[:keep])
        np.testing.assert_array_equal(xq[:keep], xq_sub)
        np.testing.assert_array_equal(scale[:keep], scale_sub)


# -- delta bundles ----------------------------------------------------------


def _tiny_bundle(seed, name="blobs", version="1", extra_provenance=None):
    """A fast classifier-only bundle whose bytes depend on ``seed``."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(24, 6))
    y = np.repeat(["a", "b", "c"], 8)
    clf = LogisticRegression().fit(X, y)
    provenance = {"seed": int(seed)}
    if extra_provenance:
        provenance.update(extra_provenance)
    return ModelBundle.create(
        name, version, classifier=clf, provenance=provenance
    )


class TestDeltaBundleProperties:
    @given(
        _SEEDS,
        _SEEDS,
        st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_delta_apply_equals_full_byte_for_byte(
        self, parent_seed, child_seed, tweak_provenance
    ):
        """verify(parent + delta) == verify(full) for any derived bundle.

        ``child_seed == parent_seed`` (hypothesis will find it) makes the
        classifier bytes identical, so the delta degenerates to a
        manifest-only archive — the equality must still hold.
        """
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            parent = _tiny_bundle(parent_seed)
            parent_path = tmp / "parent.zip"
            parent_manifest = save_bundle(parent, parent_path)

            extra = {"tweak": True} if tweak_provenance else None
            child = _tiny_bundle(
                child_seed, version="2", extra_provenance=extra
            )
            delta_path = tmp / "child.delta.zip"
            save_delta_bundle(child, delta_path, parent_manifest)
            full_path = tmp / "child.full.zip"
            save_bundle(child, full_path)

            _, delta_members = verify_bundle(
                delta_path, parent_resolver=lambda ref: parent_path
            )
            _, full_members = verify_bundle(full_path)
            assert delta_members == full_members

    @given(_SEEDS)
    @settings(max_examples=6, deadline=None)
    def test_quantized_delta_round_trips_through_parent(self, seed):
        """int8 variant shipped as a delta answers like the full archive."""
        from tests.serve.test_golden_bundle import _build_bundle, _probe_rows

        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            parent = _build_bundle()
            parent_path = tmp / "parent.zip"
            parent_manifest = save_bundle(parent, parent_path)
            qb = quantize_bundle(parent, version="1-int8")
            qb.manifest.provenance["seed"] = int(seed)
            delta_path = tmp / "int8.delta.zip"
            save_delta_bundle(qb, delta_path, parent_manifest)
            from repro.serve.bundle import load_bundle

            loaded = load_bundle(
                delta_path, parent_resolver=lambda ref: parent_path
            )
            probes = _probe_rows()
            np.testing.assert_array_equal(
                loaded.predict_proba_with("cnn", probes),
                qb.predict_proba_with("cnn", probes),
            )
